//! An exact, integer-arithmetic certificate for `c = 5/2`.
//!
//! The Figure-5 LP asks for the least `c` admitting a potential `Φ` with
//! `Φ(to) − Φ(from) + rww ≤ c · opt` on every transition. Summing the
//! inequality around any directed **cycle** of the transition graph
//! telescopes `Φ` away, forcing
//!
//! ```text
//! c ≥ Σ rww / Σ opt      (for every cycle with Σ opt > 0)
//! ```
//!
//! Conversely — the classic duality for systems of difference
//! constraints — whenever `c` is at least the maximum cycle ratio, the
//! edge weights `c·opt − rww` are non-negative around every cycle, so
//! shortest-path distances from any source yield a feasible `Φ`. Hence
//!
//! ```text
//! c*  =  max over cycles of  (Σ rww / Σ opt),
//! ```
//!
//! an entirely combinatorial quantity. The Figure-4 graph has six states
//! and ~25 transitions, so *all* simple cycles can be enumerated and the
//! maximum ratio computed with exact integer cross-multiplication — no
//! floating point, no simplex. The test asserts it equals 5/2 exactly
//! and exhibits the witness cycle (the R·W·W adversary loop).

use crate::state_machine::{enumerate_transitions, ProductState, Transition};

/// A cycle through the product machine with its exact cost sums.
#[derive(Clone, Debug)]
pub struct CycleRatio {
    /// The transitions of the cycle, in order.
    pub cycle: Vec<Transition>,
    /// Total RWW cost around the cycle.
    pub rww_sum: u64,
    /// Total OPT cost around the cycle.
    pub opt_sum: u64,
}

impl CycleRatio {
    /// The ratio as a float (for display; comparisons use integers).
    pub fn ratio(&self) -> f64 {
        self.rww_sum as f64 / self.opt_sum as f64
    }

    /// Exact comparison: is this ratio greater than `a / b`?
    pub fn gt(&self, a: u64, b: u64) -> bool {
        (self.rww_sum as u128) * (b as u128) > (a as u128) * (self.opt_sum as u128)
    }

    /// Exact equality with `a / b`.
    pub fn eq(&self, a: u64, b: u64) -> bool {
        (self.rww_sum as u128) * (b as u128) == (a as u128) * (self.opt_sum as u128)
    }
}

/// Enumerates every simple cycle of the transition graph (cycles visit
/// each *state* at most once; parallel transitions are distinct cycles).
pub fn simple_cycles() -> Vec<Vec<Transition>> {
    let transitions = enumerate_transitions();
    let mut cycles = Vec::new();
    // Standard Johnson-lite for a 6-node graph: start each cycle at its
    // minimum-index state to avoid rotations.
    for start in ProductState::all() {
        let mut path: Vec<Transition> = Vec::new();
        let mut on_path = [false; 6];
        dfs(
            start,
            start,
            &transitions,
            &mut path,
            &mut on_path,
            &mut cycles,
        );
    }
    cycles
}

fn dfs(
    start: ProductState,
    at: ProductState,
    transitions: &[Transition],
    path: &mut Vec<Transition>,
    on_path: &mut [bool; 6],
    cycles: &mut Vec<Vec<Transition>>,
) {
    on_path[at.index()] = true;
    for t in transitions.iter().filter(|t| t.from == at) {
        if t.to == start && (!path.is_empty() || t.from == start) {
            // Closing the cycle (including self-loops at the start).
            let mut c = path.clone();
            c.push(*t);
            cycles.push(c);
        } else if t.to != start && !on_path[t.to.index()] && t.to.index() > start.index() {
            // Only visit states with larger index than the start, so each
            // cycle is generated exactly once (rooted at its min state).
            path.push(*t);
            dfs(start, t.to, transitions, path, on_path, cycles);
            path.pop();
        }
    }
    on_path[at.index()] = false;
}

/// The maximum-ratio cycle, computed with exact integer comparisons.
///
/// Panics if some cycle has `Σ opt = 0` with `Σ rww > 0`, which would
/// make the LP infeasible for every finite `c` (it cannot happen for the
/// Figure-2 costs: every RWW-cost-bearing transition chain forces OPT
/// cost somewhere on the cycle).
pub fn max_ratio_cycle() -> CycleRatio {
    let mut best: Option<CycleRatio> = None;
    for cycle in simple_cycles() {
        let rww_sum: u64 = cycle.iter().map(|t| t.rww_cost).sum();
        let opt_sum: u64 = cycle.iter().map(|t| t.opt_cost).sum();
        if opt_sum == 0 {
            assert_eq!(
                rww_sum, 0,
                "zero-OPT cycle with positive RWW cost: LP would be infeasible"
            );
            continue;
        }
        let cand = CycleRatio {
            cycle,
            rww_sum,
            opt_sum,
        };
        best = match best {
            None => Some(cand),
            Some(b) => {
                if cand.gt(b.rww_sum, b.opt_sum) {
                    Some(cand)
                } else {
                    Some(b)
                }
            }
        };
    }
    best.expect("the product machine has cycles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::request::EdgeEvent;

    #[test]
    fn cycle_enumeration_is_nonempty_and_simple() {
        let cycles = simple_cycles();
        assert!(
            cycles.len() > 10,
            "expected many cycles, got {}",
            cycles.len()
        );
        for c in &cycles {
            // Transitions chain up and return to the start.
            for w in c.windows(2) {
                assert_eq!(w[0].to, w[1].from);
            }
            assert_eq!(c.first().unwrap().from, c.last().unwrap().to);
            // No state repeats except the start/end.
            let mut seen = std::collections::HashSet::new();
            for t in c {
                assert!(seen.insert(t.from.index()), "non-simple cycle {c:?}");
            }
        }
    }

    #[test]
    fn exact_maximum_cycle_ratio_is_five_halves() {
        let best = max_ratio_cycle();
        assert!(
            best.eq(5, 2),
            "max cycle ratio must be exactly 5/2, got {}/{}",
            best.rww_sum,
            best.opt_sum
        );
    }

    #[test]
    fn no_cycle_beats_five_halves() {
        for cycle in simple_cycles() {
            let rww: u64 = cycle.iter().map(|t| t.rww_cost).sum();
            let opt: u64 = cycle.iter().map(|t| t.opt_cost).sum();
            assert!(
                (rww as u128) * 2 <= (opt as u128) * 5,
                "cycle with ratio > 5/2: {cycle:?}"
            );
        }
    }

    #[test]
    fn witness_cycle_is_the_adversary_loop() {
        // The maximising cycle spends 5 (RWW) against 2 (OPT) — the
        // R·W·W pattern. Check its event multiset: one R and two W
        // (noops may pad it but cost nothing for either player here).
        let best = max_ratio_cycle();
        assert_eq!(best.rww_sum, 5);
        assert_eq!(best.opt_sum, 2);
        let reads = best
            .cycle
            .iter()
            .filter(|t| t.event == EdgeEvent::R)
            .count();
        let writes = best
            .cycle
            .iter()
            .filter(|t| t.event == EdgeEvent::W)
            .count();
        assert_eq!((reads, writes), (1, 2), "{:?}", best.cycle);
    }

    #[test]
    fn certificate_matches_the_simplex() {
        let lp_c = crate::figure5::solve_figure5().unwrap().c;
        let best = max_ratio_cycle();
        assert!((lp_c - best.ratio()).abs() < 1e-9);
    }
}
