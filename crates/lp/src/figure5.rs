//! Figure 5: the linear program of Lemma 4.6.
//!
//! For every transition of the Figure-4 product machine, the amortized
//! cost inequality
//!
//! ```text
//! Φ(to) − Φ(from) + cost_RWW ≤ c · cost_OPT
//! ```
//!
//! becomes an LP row over the variables `(c, Φ(0,0), Φ(0,1), Φ(0,2),
//! Φ(1,0), Φ(1,1), Φ(1,2))`, all non-negative; the objective minimises
//! `c`. The paper reports the optimum
//!
//! ```text
//! c = 5/2,  Φ = (0, 2, 3, 5/2, 2, 1/2)
//! ```
//!
//! which (together with `Φ ≥ 0` and `Φ(0,0) = 0` at the initial state)
//! proves Theorem 1. This module builds the LP *from the transition
//! system* (not from a hard-coded table), solves it with the in-repo
//! simplex, and cross-checks the paper's 21 printed rows against the
//! enumerated transitions.

use crate::simplex::{solve_min, LpError};
use crate::state_machine::{enumerate_transitions, Transition};

/// The paper's optimal competitive constant.
pub const PAPER_C: f64 = 2.5;

/// The paper's optimal potential, indexed by
/// `ProductState::index()`: `Φ(0,0), Φ(0,1), Φ(0,2), Φ(1,0), Φ(1,1),
/// Φ(1,2)`.
pub const PAPER_PHI: [f64; 6] = [0.0, 2.0, 3.0, 2.5, 2.0, 0.5];

/// The 21 rows printed in Figure 5, as
/// `(from index, to index, additive RWW cost, OPT-cost multiplier of c)`,
/// i.e. the row `Φ(to) − Φ(from) + rww ≤ opt · c`.
pub const PAPER_ROWS: [(usize, usize, u64, u64); 21] = [
    (0, 2, 2, 2),
    (0, 5, 2, 2),
    (0, 0, 0, 0),
    (3, 5, 2, 0),
    (3, 0, 0, 2),
    (3, 3, 0, 1),
    (3, 0, 0, 1),
    (2, 2, 0, 2),
    (2, 5, 0, 2),
    (2, 1, 1, 0),
    (5, 5, 0, 0),
    (5, 1, 1, 2),
    (5, 4, 1, 1),
    (5, 2, 0, 1),
    (1, 2, 0, 2),
    (1, 5, 0, 2),
    (1, 0, 2, 0),
    (4, 5, 0, 0),
    (4, 0, 2, 2),
    (4, 3, 2, 1),
    (4, 1, 0, 1),
];

/// An LP in `min cᵀx, Ax ≤ b, x ≥ 0` form.
#[derive(Clone, Debug)]
pub struct Lp {
    /// Objective coefficients.
    pub objective: Vec<f64>,
    /// Constraint matrix rows.
    pub a: Vec<Vec<f64>>,
    /// Right-hand sides.
    pub b: Vec<f64>,
}

/// Deduplicated LP rows derived from the transition system: each distinct
/// `(from, to, rww, opt)` tuple once.
pub fn lp_rows_from_transitions(transitions: &[Transition]) -> Vec<(usize, usize, u64, u64)> {
    let mut rows = Vec::new();
    for t in transitions {
        let row = (t.from.index(), t.to.index(), t.rww_cost, t.opt_cost);
        if !rows.contains(&row) {
            rows.push(row);
        }
    }
    rows
}

/// Builds the Figure-5 LP from the enumerated transition system.
///
/// Variable order: `x = [c, Φ_0, …, Φ_5]`.
pub fn build_figure5_lp() -> Lp {
    let rows = lp_rows_from_transitions(&enumerate_transitions());
    let mut a = Vec::with_capacity(rows.len());
    let mut b = Vec::with_capacity(rows.len());
    for (from, to, rww, opt) in rows {
        // Φ(to) − Φ(from) − opt·c ≤ −rww
        let mut coeffs = vec![0.0f64; 7];
        coeffs[0] = -(opt as f64);
        coeffs[1 + to] += 1.0;
        coeffs[1 + from] -= 1.0;
        a.push(coeffs);
        b.push(-(rww as f64));
    }
    Lp {
        objective: {
            let mut o = vec![0.0; 7];
            o[0] = 1.0;
            o
        },
        a,
        b,
    }
}

/// Solution of the Figure-5 LP.
#[derive(Clone, Debug)]
pub struct Figure5Solution {
    /// Optimal competitive constant `c`.
    pub c: f64,
    /// A potential achieving it (indexed like [`PAPER_PHI`]).
    pub phi: [f64; 6],
}

/// Solves the Figure-5 LP with the in-repo simplex.
///
/// ```
/// let sol = oat_lp::figure5::solve_figure5().unwrap();
/// assert!((sol.c - 2.5).abs() < 1e-7, "the paper's 5/2");
/// ```
pub fn solve_figure5() -> Result<Figure5Solution, LpError> {
    let lp = build_figure5_lp();
    let sol = solve_min(&lp.objective, &lp.a, &lp.b)?;
    let mut phi = [0.0; 6];
    phi.copy_from_slice(&sol.x[1..7]);
    Ok(Figure5Solution { c: sol.x[0], phi })
}

/// Checks that a `(c, Φ)` pair satisfies every row of the LP (within
/// `tol`). Used to validate the paper's printed optimum.
pub fn is_feasible(c: f64, phi: &[f64; 6], tol: f64) -> bool {
    let lp = build_figure5_lp();
    let x: Vec<f64> = std::iter::once(c).chain(phi.iter().copied()).collect();
    lp.a.iter().zip(&lp.b).all(|(row, &rhs)| {
        let lhs: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
        lhs <= rhs + tol
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerated_rows_cover_the_papers_21() {
        let rows = lp_rows_from_transitions(&enumerate_transitions());
        for pr in PAPER_ROWS {
            assert!(
                rows.contains(&pr),
                "paper row {pr:?} missing from the enumerated transition system"
            );
        }
        // Anything we enumerate beyond the paper's 21 must be a trivial
        // 0 ≤ 0 row (a no-change noop the paper omitted).
        for r in rows {
            if !PAPER_ROWS.contains(&r) {
                let (from, to, rww, opt) = r;
                assert!(
                    from == to && rww == 0 && opt == 0,
                    "unexpected non-trivial extra row {r:?}"
                );
            }
        }
    }

    #[test]
    fn lp_optimum_is_five_halves() {
        let sol = solve_figure5().expect("Figure 5 LP is feasible and bounded");
        assert!(
            (sol.c - PAPER_C).abs() < 1e-7,
            "expected c = 5/2, solved c = {}",
            sol.c
        );
        // The solved potential must itself be feasible.
        assert!(is_feasible(sol.c, &sol.phi, 1e-6));
    }

    #[test]
    fn papers_potential_is_feasible_at_c_five_halves() {
        assert!(is_feasible(PAPER_C, &PAPER_PHI, 1e-9));
    }

    #[test]
    fn papers_potential_is_infeasible_below_five_halves() {
        // 5/2 is tight: no potential works for smaller c. (We check the
        // paper's Φ fails, and — stronger — the LP with c fixed slightly
        // below 5/2 is infeasible.)
        assert!(!is_feasible(PAPER_C - 0.05, &PAPER_PHI, 1e-9));

        let lp = build_figure5_lp();
        // Fix c = 2.45 by adding c ≤ 2.45 and −c ≤ −2.45.
        let mut a = lp.a.clone();
        let mut b = lp.b.clone();
        let mut up = vec![0.0; 7];
        up[0] = 1.0;
        a.push(up);
        b.push(2.45);
        let mut dn = vec![0.0; 7];
        dn[0] = -1.0;
        a.push(dn);
        b.push(-2.45);
        let res = solve_min(&lp.objective, &a, &b);
        assert_eq!(res.err(), Some(LpError::Infeasible));
    }

    #[test]
    fn initial_state_potential_is_zero_at_optimum() {
        // Φ(0,0) can always be taken 0 (the amortized argument needs
        // Φ(start) = 0 and Φ ≥ 0); verify our solved potential has
        // Φ(0,0) = 0 or can be shifted... for this LP Φ(0,0) = 0 holds
        // at the vertex the simplex finds, matching the paper.
        let sol = solve_figure5().unwrap();
        assert!(sol.phi[0].abs() < 1e-7, "Φ(0,0) = {}", sol.phi[0]);
    }
}
