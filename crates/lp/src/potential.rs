//! Empirical potential-function audit.
//!
//! Lemma 4.6's argument: along any `σ'(u,v)` trace, with OPT playing its
//! optimal per-edge trajectory and RWW playing Figure 3, every step
//! satisfies
//!
//! ```text
//! Φ(after) − Φ(before) + cost_RWW ≤ (5/2) · cost_OPT.
//! ```
//!
//! This module replays traces through the product machine with the
//! paper's potential and reports the maximal violation (which must be
//! ≤ 0) and the worst per-trace slack — experiment E13.

use oat_core::request::EdgeEvent;
use oat_offline::cost_model::edge_cost;
use oat_offline::opt_dp::opt_edge_trajectory;

use crate::figure5::{PAPER_C, PAPER_PHI};
use crate::state_machine::rww_step;

/// Result of auditing one event trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditReport {
    /// Total RWW cost along the trace.
    pub rww_cost: u64,
    /// Total OPT cost along the trace (per-edge optimum).
    pub opt_cost: u64,
    /// Maximum over steps of
    /// `ΔΦ + cost_RWW − (5/2)·cost_OPT` (must be ≤ 0).
    pub max_step_violation: f64,
    /// Final potential (bounds total slack: `C_RWW ≤ (5/2)·C_OPT + Φ_end`
    /// since `Φ_start = 0`).
    pub final_potential: f64,
}

/// Replays `events` with RWW against the optimal OPT trajectory and
/// audits the amortized inequality step by step with the paper's
/// potential.
pub fn audit_trace(events: &[EdgeEvent]) -> AuditReport {
    let (opt_total, opt_states) = opt_edge_trajectory(events);
    let mut rww_y = 0u8;
    let mut opt_state = false;
    let mut rww_total = 0u64;
    let mut max_violation = f64::NEG_INFINITY;
    let mut phi = PAPER_PHI[state_index(opt_state, rww_y)];
    assert_eq!(phi, 0.0, "initial potential must be zero");

    for (i, &ev) in events.iter().enumerate() {
        let (ny, rcost) = rww_step(rww_y, ev);
        let opt_next = opt_states[i];
        let ocost =
            edge_cost(opt_state, ev, opt_next).expect("OPT trajectory uses legal transitions");
        let nphi = PAPER_PHI[state_index(opt_next, ny)];
        let violation = (nphi - phi) + rcost as f64 - PAPER_C * ocost as f64;
        max_violation = max_violation.max(violation);
        rww_total += rcost;
        phi = nphi;
        rww_y = ny;
        opt_state = opt_next;
    }
    if events.is_empty() {
        max_violation = 0.0;
    }
    AuditReport {
        rww_cost: rww_total,
        opt_cost: opt_total,
        max_step_violation: max_violation,
        final_potential: phi,
    }
}

fn state_index(opt: bool, rww: u8) -> usize {
    (opt as usize) * 3 + rww as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::request::sigma_prime_of;
    use oat_core::request::EdgeEvent::*;

    #[test]
    fn adversarial_trace_is_tight_but_never_violated() {
        let mut raw = Vec::new();
        for _ in 0..50 {
            raw.extend([R, W, W]);
        }
        let events = sigma_prime_of(&raw);
        let rep = audit_trace(&events);
        assert!(rep.max_step_violation <= 1e-9, "{rep:?}");
        // Amortized bound: C_RWW ≤ (5/2)·C_OPT + Φ_end.
        assert!(rep.rww_cost as f64 <= PAPER_C * rep.opt_cost as f64 + rep.final_potential + 1e-9);
        // And the adversarial trace is essentially tight.
        let ratio = rep.rww_cost as f64 / rep.opt_cost as f64;
        assert!(
            ratio > 2.45,
            "adversarial ratio {ratio} should approach 5/2"
        );
    }

    #[test]
    fn random_traces_never_violate_the_amortized_inequality() {
        let mut seed = 31u64;
        for _ in 0..300 {
            let mut raw = Vec::new();
            for _ in 0..120 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
                raw.push(if (seed >> 34).is_multiple_of(2) { R } else { W });
            }
            let events = sigma_prime_of(&raw);
            let rep = audit_trace(&events);
            assert!(rep.max_step_violation <= 1e-9, "{rep:?}");
            assert!(
                rep.rww_cost as f64 <= PAPER_C * rep.opt_cost as f64 + rep.final_potential + 1e-9
            );
        }
    }

    #[test]
    fn empty_trace() {
        let rep = audit_trace(&[]);
        assert_eq!(rep.rww_cost, 0);
        assert_eq!(rep.opt_cost, 0);
        assert_eq!(rep.max_step_violation, 0.0);
    }
}
