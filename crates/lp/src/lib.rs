//! # oat-lp — the Figure-4 state machine and the Figure-5 linear program
//!
//! The competitive proof of Theorem 1 (Lemma 4.6) runs on three artefacts:
//!
//! * [`state_machine`] — **Figure 4**: the product states `S(x, y)` with
//!   `x = F_OPT(u,v) ∈ {0,1}` and `y = F_RWW(u,v) ∈ {0,1,2}`, and every
//!   legal transition on an `R`/`W`/`N` event (RWW moves
//!   deterministically, OPT nondeterministically through the Figure-2
//!   rows),
//! * [`figure5`] — **Figure 5**: the linear program
//!   `min c` s.t. `Φ(next) − Φ(cur) + cost_RWW ≤ c · cost_OPT` for every
//!   transition, with `Φ ≥ 0`; the paper reports the optimum `c = 5/2`
//!   with `Φ = (0, 2, 3, 5/2, 2, 1/2)`,
//! * [`simplex`] — a from-scratch dense two-phase simplex solver (no
//!   external LP dependency) used to re-derive that optimum,
//! * [`potential`] — an empirical audit: replay traces through the
//!   product machine and check the amortized inequality step by step with
//!   the paper's potential,
//! * [`certificate`] — an exact integer-arithmetic proof of `c = 5/2`:
//!   the LP optimum equals the maximum cost-ratio over simple cycles of
//!   the transition graph, all of which are enumerated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod figure5;
pub mod potential;
pub mod simplex;
pub mod state_machine;

pub use figure5::{build_figure5_lp, solve_figure5, Figure5Solution, PAPER_C, PAPER_PHI};
pub use simplex::{solve_min, LpError, LpSolution};
pub use state_machine::{enumerate_transitions, ProductState, Transition};
