//! A dense two-phase simplex solver.
//!
//! Solves `min cᵀx` subject to `Ax ≤ b`, `x ≥ 0` (no sign restriction on
//! `b`). Written from scratch for this repository — the Figure-5 LP has 7
//! variables and ~27 rows, so a dense tableau with Bland's anti-cycling
//! rule is both simple and robust. The solver is exact enough for the
//! rational optimum `c = 5/2` to be recovered to ~1e-9.
//!
//! Phase 1 minimises the sum of artificial variables to find a basic
//! feasible solution; phase 2 optimises the real objective. Unbounded and
//! infeasible programs are reported as errors.

/// Why an LP could not be solved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible"),
            LpError::Unbounded => write!(f, "unbounded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal assignment of the original variables.
    pub x: Vec<f64>,
}

const EPS: f64 = 1e-9;

/// Minimises `cᵀx` subject to `a[i]·x ≤ b[i]` for all `i`, `x ≥ 0`.
pub fn solve_min(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Result<LpSolution, LpError> {
    let n = c.len();
    let m = a.len();
    assert_eq!(b.len(), m, "one rhs per constraint");
    for row in a {
        assert_eq!(row.len(), n, "constraint arity mismatch");
    }

    // Equality form with slacks: A x + I s = b. Rows with negative b are
    // negated (slack coefficient flips to -1) and get an artificial
    // variable to form the initial basis; rows with b >= 0 use their
    // slack as the initial basic variable.
    //
    // Column layout: [x (n)] [s (m)] [artificials (k)] [rhs].
    let mut needs_artificial = Vec::new();
    for (i, &bi) in b.iter().enumerate() {
        if bi < 0.0 {
            needs_artificial.push(i);
        }
    }
    let k = needs_artificial.len();
    let cols = n + m + k;
    let mut t = vec![vec![0.0f64; cols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut art_index = 0usize;
    for i in 0..m {
        let neg = b[i] < 0.0;
        let sign = if neg { -1.0 } else { 1.0 };
        for j in 0..n {
            t[i][j] = sign * a[i][j];
        }
        t[i][n + i] = sign; // slack
        t[i][cols] = sign * b[i];
        if neg {
            let aj = n + m + art_index;
            art_index += 1;
            t[i][aj] = 1.0;
            basis[i] = aj;
        } else {
            basis[i] = n + i;
        }
    }

    if k > 0 {
        // Phase 1: minimise the sum of artificials.
        let mut obj = vec![0.0f64; cols + 1];
        for o in obj.iter_mut().take(cols).skip(n + m) {
            *o = 1.0;
        }
        // Price out the basic artificials.
        for i in 0..m {
            if basis[i] >= n + m {
                for j in 0..=cols {
                    obj[j] -= t[i][j];
                }
            }
        }
        run_simplex(&mut t, &mut basis, &mut obj, cols).map_err(|e| match e {
            // Phase 1 is bounded below by 0; "unbounded" here would be a
            // solver bug, surface it as infeasible-with-panic in debug.
            LpError::Unbounded => unreachable!("phase 1 cannot be unbounded"),
            other => other,
        })?;
        let phase1_value = -obj[cols];
        if phase1_value > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive any remaining artificial out of the basis (degenerate
        // feasible solutions can leave a zero-valued artificial basic).
        for i in 0..m {
            if basis[i] >= n + m {
                // Find a non-artificial column with nonzero coefficient.
                if let Some(j) = (0..n + m).find(|&j| t[i][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, None, i, j, cols);
                } // else: the row is redundant; harmless to leave.
            }
        }
    }

    // Phase 2 objective, priced out against the current basis. Artificial
    // columns are frozen by giving them a prohibitive cost of +inf — we
    // simply never let them enter (handled in run_simplex by bounds on
    // the candidate columns via `limit`).
    let limit = n + m;
    let mut obj = vec![0.0f64; cols + 1];
    obj[..n].copy_from_slice(c);
    for i in 0..m {
        let bi = basis[i];
        if obj[bi].abs() > 0.0 {
            let coef = obj[bi];
            for j in 0..=cols {
                obj[j] -= coef * t[i][j];
            }
        }
    }
    run_simplex_limited(&mut t, &mut basis, &mut obj, cols, limit)?;

    let mut x = vec![0.0f64; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][cols];
        }
    }
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    Ok(LpSolution { objective, x })
}

/// Runs simplex iterations over all columns.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: &mut [f64],
    cols: usize,
) -> Result<(), LpError> {
    run_simplex_limited(t, basis, obj, cols, cols)
}

/// Runs simplex iterations; only columns `< limit` may enter the basis
/// (used to freeze artificials in phase 2). Bland's rule throughout.
fn run_simplex_limited(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: &mut [f64],
    cols: usize,
    limit: usize,
) -> Result<(), LpError> {
    let m = t.len();
    let max_iters = 10_000 + 100 * (m + cols);
    for _ in 0..max_iters {
        // Bland: entering column = smallest index with negative reduced
        // cost.
        let Some(enter) = (0..limit).find(|&j| obj[j] < -EPS) else {
            return Ok(());
        };
        // Ratio test, ties broken by smallest basis index (Bland).
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][cols] / t[i][enter];
                let better = ratio < best - EPS
                    || (ratio < best + EPS && leave.map(|l| basis[i] < basis[l]).unwrap_or(true));
                if better {
                    best = ratio.min(best);
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(t, basis, Some(obj), leave, enter, cols);
    }
    panic!("simplex exceeded its iteration budget (cycling?)")
}

/// Pivots on `(row, col)`, updating the tableau, basis, and objective.
fn pivot(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: Option<&mut [f64]>,
    row: usize,
    col: usize,
    cols: usize,
) {
    let pv = t[row][col];
    debug_assert!(pv.abs() > EPS, "pivot on a (near-)zero element");
    for x in t[row].iter_mut().take(cols + 1) {
        *x /= pv;
    }
    // Row elimination needs simultaneous access to the pivot row and the
    // target row; split_at_mut keeps it safe.
    let (head, tail) = t.split_at_mut(row);
    let (pivot_row, tail) = tail.split_first_mut().expect("row in range");
    for r in head.iter_mut().chain(tail.iter_mut()) {
        if r[col].abs() > EPS {
            let f = r[col];
            for (x, &p) in r.iter_mut().zip(pivot_row.iter()).take(cols + 1) {
                *x -= f * p;
            }
        }
    }
    let t_row_snapshot: Vec<f64> = pivot_row.clone();
    if let Some(obj) = obj {
        if obj[col].abs() > EPS {
            let f = obj[col];
            for (x, &p) in obj.iter_mut().zip(t_row_snapshot.iter()).take(cols + 1) {
                *x -= f * p;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn trivial_minimum_at_origin() {
        // min x + y s.t. x + y <= 10 → 0 at origin.
        let sol = solve_min(&[1.0, 1.0], &[vec![1.0, 1.0]], &[10.0]).unwrap();
        assert_close(sol.objective, 0.0);
    }

    #[test]
    fn forced_lower_bounds() {
        // min x + y s.t. -x <= -3, -y <= -4 → x=3, y=4, obj 7.
        let sol = solve_min(
            &[1.0, 1.0],
            &[vec![-1.0, 0.0], vec![0.0, -1.0]],
            &[-3.0, -4.0],
        )
        .unwrap();
        assert_close(sol.objective, 7.0);
        assert_close(sol.x[0], 3.0);
        assert_close(sol.x[1], 4.0);
    }

    #[test]
    fn classic_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig).
        // As min of the negation: optimum -36 at (2, 6).
        let sol = solve_min(
            &[-3.0, -5.0],
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            &[4.0, 12.0, 18.0],
        )
        .unwrap();
        assert_close(sol.objective, -36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and -x <= -2 (x >= 2): empty.
        let r = solve_min(&[1.0], &[vec![1.0], vec![-1.0]], &[1.0, -2.0]);
        assert_eq!(r.err(), Some(LpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x unconstrained above.
        let r = solve_min(&[-1.0], &[vec![0.0]], &[5.0]);
        assert_eq!(r.err(), Some(LpError::Unbounded));
    }

    #[test]
    fn mixed_signs_rhs() {
        // min 2x + 3y s.t. -x - y <= -4 (x + y >= 4), x <= 3.
        // Best: x=3, y=1 → 9.
        let sol = solve_min(
            &[2.0, 3.0],
            &[vec![-1.0, -1.0], vec![1.0, 0.0]],
            &[-4.0, 3.0],
        )
        .unwrap();
        assert_close(sol.objective, 9.0);
    }

    #[test]
    fn degenerate_constraints_handled() {
        // Redundant rows and a tie-rich geometry.
        let sol = solve_min(
            &[1.0, 1.0],
            &[
                vec![-1.0, -1.0],
                vec![-1.0, -1.0],
                vec![-2.0, -2.0],
                vec![1.0, 1.0],
            ],
            &[-2.0, -2.0, -4.0, 10.0],
        )
        .unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn random_lps_match_vertex_enumeration() {
        // 2-variable LPs can be solved by enumerating constraint-pair
        // intersections; compare against the simplex on random instances.
        let mut seed = 0xabcdefu64;
        let mut rnd = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) * 10.0 - 5.0
        };
        for _case in 0..200 {
            let c = [rnd(), rnd()];
            let m = 5;
            let mut a = Vec::new();
            let mut b = Vec::new();
            for _ in 0..m {
                a.push(vec![rnd(), rnd()]);
                b.push(rnd().abs() + 1.0); // keep origin feasible => bounded feasible region not guaranteed, but feasible
            }
            // Add a box to guarantee boundedness.
            a.push(vec![1.0, 0.0]);
            b.push(20.0);
            a.push(vec![0.0, 1.0]);
            b.push(20.0);

            let sol = solve_min(&c, &a, &b).expect("feasible and bounded");

            // Vertex enumeration: all intersections of pairs of active
            // constraints (including axes x=0, y=0).
            let mut rows: Vec<(f64, f64, f64)> =
                a.iter().zip(&b).map(|(r, &bb)| (r[0], r[1], bb)).collect();
            rows.push((-1.0, 0.0, 0.0)); // x >= 0
            rows.push((0.0, -1.0, 0.0)); // y >= 0
            let mut best = f64::INFINITY;
            for i in 0..rows.len() {
                for j in i + 1..rows.len() {
                    let (a1, b1, c1) = rows[i];
                    let (a2, b2, c2) = rows[j];
                    let det = a1 * b2 - a2 * b1;
                    if det.abs() < 1e-9 {
                        continue;
                    }
                    let x = (c1 * b2 - c2 * b1) / det;
                    let y = (a1 * c2 - a2 * c1) / det;
                    if x < -1e-7 || y < -1e-7 {
                        continue;
                    }
                    if rows
                        .iter()
                        .all(|&(aa, bb, cc)| aa * x + bb * y <= cc + 1e-6)
                    {
                        best = best.min(c[0] * x + c[1] * y);
                    }
                }
            }
            // Origin is always feasible here.
            best = best.min(0.0);
            assert!(
                (sol.objective - best).abs() < 1e-5,
                "simplex {} vs enumeration {}",
                sol.objective,
                best
            );
        }
    }
}
