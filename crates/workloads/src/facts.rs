//! Seeded fact-stream generators for the continuous-query layer.
//!
//! A *fact* is one keyed observation `(key, val, at_ms)` — the unit the
//! `oat-query` engine folds into per-key aggregates. Streams are
//! pre-generated (the engine needs the total count up front so coverage
//! is monotone) and deterministic in their seed, like every other
//! generator in this crate. Timestamps are synthetic stream time, not
//! wall-clock: facts arrive in non-decreasing `at_ms` order, which is
//! what tumbling-window finalization keys off.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One keyed observation in a fact stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fact {
    /// Group-by key (dense, `0..keys`). Each distinct key lazily
    /// instantiates one tree of the query forest.
    pub key: u32,
    /// Observed value, folded through the query's `AggOp`.
    pub val: i64,
    /// Synthetic stream timestamp in milliseconds, non-decreasing.
    pub at_ms: u64,
}

/// Advances synthetic stream time: facts are spaced `gap_ms` apart.
fn stamp(i: usize, gap_ms: u64) -> u64 {
    i as u64 * gap_ms
}

/// Uniform stream: each fact picks a uniformly random key; values are
/// drawn from a small range so aggregates stay readable.
pub fn uniform_facts(len: usize, keys: u32, gap_ms: u64, seed: u64) -> Vec<Fact> {
    assert!(keys >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| Fact {
            key: rng.gen_range(0..keys),
            val: rng.gen_range(-100..=100),
            at_ms: stamp(i, gap_ms),
        })
        .collect()
}

/// Zipf-keyed stream: key popularity follows a Zipf(`s`) law over
/// `0..keys`, so a few hot keys dominate — the skew that makes a hot
/// subtree of the forest carry most of the write load while cold trees
/// refine lazily.
pub fn zipf_facts(len: usize, keys: u32, s: f64, gap_ms: u64, seed: u64) -> Vec<Fact> {
    assert!(keys >= 1);
    assert!(s > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative Zipf mass over ranks 1..=keys; inverse-CDF sampling.
    let mut cdf = Vec::with_capacity(keys as usize);
    let mut total = 0.0f64;
    for rank in 1..=keys {
        total += 1.0 / f64::from(rank).powf(s);
        cdf.push(total);
    }
    (0..len)
        .map(|i| {
            let u = rng.gen_range(0.0..total);
            let key = cdf.partition_point(|&c| c <= u) as u32;
            Fact {
                key: key.min(keys - 1),
                val: rng.gen_range(-100..=100),
                at_ms: stamp(i, gap_ms),
            }
        })
        .collect()
}

/// Phase-shifting stream: consecutive thirds of the stream each favor a
/// different key band (`0..k/3`, `k/3..2k/3`, `2k/3..k`), with a small
/// uniform background. Models interest drifting across the key space —
/// trees that were hot go quiet and vice versa.
pub fn phase_facts(len: usize, keys: u32, gap_ms: u64, seed: u64) -> Vec<Fact> {
    assert!(keys >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let band = (keys / 3).max(1);
    (0..len)
        .map(|i| {
            let phase = (i * 3 / len.max(1)).min(2) as u32;
            let key = if rng.gen_bool(0.8) {
                let lo = (phase * band).min(keys - 1);
                let hi = ((phase + 1) * band).clamp(lo + 1, keys);
                rng.gen_range(lo..hi)
            } else {
                rng.gen_range(0..keys)
            };
            Fact {
                key,
                val: rng.gen_range(-100..=100),
                at_ms: stamp(i, gap_ms),
            }
        })
        .collect()
}

/// Parses a stream-kind name (`uniform`, `zipf`, `phases`) into a
/// generated stream; used by the `oat query` CLI and the bench harness.
pub fn facts_by_name(
    name: &str,
    len: usize,
    keys: u32,
    gap_ms: u64,
    seed: u64,
) -> Option<Vec<Fact>> {
    match name {
        "uniform" => Some(uniform_facts(len, keys, gap_ms, seed)),
        "zipf" => Some(zipf_facts(len, keys, 1.2, gap_ms, seed)),
        "phases" => Some(phase_facts(len, keys, gap_ms, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            zipf_facts(200, 8, 1.2, 5, 42),
            zipf_facts(200, 8, 1.2, 5, 42)
        );
        assert_ne!(
            zipf_facts(200, 8, 1.2, 5, 42),
            zipf_facts(200, 8, 1.2, 5, 43)
        );
    }

    #[test]
    fn keys_in_range_and_time_monotone() {
        for facts in [
            uniform_facts(300, 5, 3, 1),
            zipf_facts(300, 5, 1.1, 3, 1),
            phase_facts(300, 5, 3, 1),
        ] {
            assert_eq!(facts.len(), 300);
            let mut last = 0;
            for f in &facts {
                assert!(f.key < 5);
                assert!(f.at_ms >= last);
                last = f.at_ms;
            }
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let facts = zipf_facts(5000, 16, 1.2, 1, 7);
        let mut counts = [0usize; 16];
        for f in &facts {
            counts[f.key as usize] += 1;
        }
        // Rank 0 should clearly dominate the tail under s=1.2.
        assert!(counts[0] > counts[8] * 2, "{counts:?}");
    }

    #[test]
    fn by_name_dispatch() {
        assert!(facts_by_name("uniform", 10, 2, 1, 0).is_some());
        assert!(facts_by_name("zipf", 10, 2, 1, 0).is_some());
        assert!(facts_by_name("phases", 10, 2, 1, 0).is_some());
        assert!(facts_by_name("nope", 10, 2, 1, 0).is_none());
    }
}
