//! Seeded request-sequence generators.
//!
//! All generators emit `Request<i64>` sequences (the SUM-friendly value
//! domain used by the consistency oracles); write arguments are drawn
//! from a small range so aggregate values stay readable in reports.

use oat_core::request::Request;
use oat_core::tree::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A declarative workload description, used by the experiment harness to
/// label sweeps.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of requests.
    pub len: usize,
    /// Fraction of writes (for uniform-style workloads).
    pub write_fraction: f64,
}

/// Uniform mix: each request picks a uniformly random node and is a write
/// with probability `write_fraction`.
pub fn uniform(tree: &Tree, len: usize, write_fraction: f64, seed: u64) -> Vec<Request<i64>> {
    assert!((0.0..=1.0).contains(&write_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let n = tree.len() as u32;
    (0..len)
        .map(|_| {
            let node = NodeId(rng.gen_range(0..n));
            if rng.gen_bool(write_fraction) {
                Request::write(node, rng.gen_range(-100..=100))
            } else {
                Request::combine(node)
            }
        })
        .collect()
}

/// Hotspot mix: combines come from `readers` fixed nodes, writes from
/// `writers` fixed nodes — the locality pattern where leases pay off.
pub fn hotspot(
    tree: &Tree,
    len: usize,
    write_fraction: f64,
    readers: usize,
    writers: usize,
    seed: u64,
) -> Vec<Request<i64>> {
    let n = tree.len();
    assert!(readers >= 1 && readers <= n);
    assert!(writers >= 1 && writers <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    // Reader set from the front, writer set from the back, so on most
    // topologies they are far apart.
    let reader_ids: Vec<u32> = (0..readers as u32).collect();
    let writer_ids: Vec<u32> = ((n - writers) as u32..n as u32).collect();
    (0..len)
        .map(|_| {
            if rng.gen_bool(write_fraction) {
                let node = NodeId(writer_ids[rng.gen_range(0..writer_ids.len())]);
                Request::write(node, rng.gen_range(-100..=100))
            } else {
                let node = NodeId(reader_ids[rng.gen_range(0..reader_ids.len())]);
                Request::combine(node)
            }
        })
        .collect()
}

/// Phase-shifting mix: consecutive phases with different write fractions
/// (e.g. read-heavy mornings, write-heavy bursts) — the paper's argument
/// against static strategies.
pub fn phases(tree: &Tree, spec: &[(usize, f64)], seed: u64) -> Vec<Request<i64>> {
    let mut out = Vec::new();
    for (i, &(len, wf)) in spec.iter().enumerate() {
        out.extend(uniform(tree, len, wf, seed.wrapping_add(i as u64)));
    }
    out
}

/// A Zipf(α) sampler over `0..n` with a precomputed CDF — node ranks are
/// a random permutation, so hot nodes land anywhere in the tree.
pub struct ZipfNodes {
    cdf: Vec<f64>,
    perm: Vec<u32>,
}

impl ZipfNodes {
    /// New sampler over `n` nodes with exponent `alpha > 0`.
    pub fn new(n: usize, alpha: f64, rng: &mut StdRng) -> Self {
        assert!(n >= 1 && alpha > 0.0);
        let mut weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Fisher–Yates permutation of node ids.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        ZipfNodes { cdf: weights, perm }
    }

    /// Draws one node.
    pub fn sample(&self, rng: &mut StdRng) -> NodeId {
        let x: f64 = rng.gen();
        let rank = self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1);
        NodeId(self.perm[rank])
    }
}

/// Zipf-skewed mix: both readers and writers drawn Zipf(α) over the
/// nodes (independent permutations), writes with probability
/// `write_fraction`. α ≈ 0.8–1.2 models realistic hot-spot skew.
pub fn zipf(
    tree: &Tree,
    len: usize,
    write_fraction: f64,
    alpha: f64,
    seed: u64,
) -> Vec<Request<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let readers = ZipfNodes::new(tree.len(), alpha, &mut rng);
    let writers = ZipfNodes::new(tree.len(), alpha, &mut rng);
    (0..len)
        .map(|_| {
            if rng.gen_bool(write_fraction) {
                Request::write(writers.sample(&mut rng), rng.gen_range(-100..=100))
            } else {
                Request::combine(readers.sample(&mut rng))
            }
        })
        .collect()
}

/// Diurnal mix: the write fraction follows a day/night sine pattern over
/// `cycles` full periods (read-heavy "days", write-heavy "nights") —
/// a smoother version of [`phases`] stressing how quickly a policy
/// re-adapts.
pub fn diurnal(tree: &Tree, len: usize, cycles: f64, seed: u64) -> Vec<Request<i64>> {
    assert!(cycles > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = tree.len() as u32;
    (0..len)
        .map(|i| {
            let phase = (i as f64 / len as f64) * cycles * std::f64::consts::TAU;
            // Write fraction swings between 0.1 and 0.9.
            let wf = 0.5 + 0.4 * phase.sin();
            let node = NodeId(rng.gen_range(0..n));
            if rng.gen_bool(wf) {
                Request::write(node, rng.gen_range(-100..=100))
            } else {
                Request::combine(node)
            }
        })
        .collect()
}

/// Bursty writes: a read-mostly background (`background_wf` writes) with
/// periodic write bursts of length `burst_len` from one random node —
/// the "incident" pattern where RWW's fast lease-breaking pays off.
pub fn bursty(
    tree: &Tree,
    len: usize,
    background_wf: f64,
    burst_every: usize,
    burst_len: usize,
    seed: u64,
) -> Vec<Request<i64>> {
    assert!(burst_every > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = tree.len() as u32;
    let mut out = Vec::with_capacity(len);
    let mut i = 0usize;
    while out.len() < len {
        if i % burst_every == burst_every - 1 {
            let burster = NodeId(rng.gen_range(0..n));
            for _ in 0..burst_len.min(len - out.len()) {
                out.push(Request::write(burster, rng.gen_range(-100..=100)));
            }
        } else {
            let node = NodeId(rng.gen_range(0..n));
            if rng.gen_bool(background_wf) {
                out.push(Request::write(node, rng.gen_range(-100..=100)));
            } else {
                out.push(Request::combine(node));
            }
        }
        i += 1;
    }
    out
}

/// Single writer, many readers: one node writes, all others read in
/// round-robin. `writes_per_read_round` writes between full read rounds.
pub fn single_writer(
    tree: &Tree,
    rounds: usize,
    writes_per_read_round: usize,
    writer: NodeId,
) -> Vec<Request<i64>> {
    let mut out = Vec::new();
    let mut x = 0i64;
    for _ in 0..rounds {
        for _ in 0..writes_per_read_round {
            x += 1;
            out.push(Request::write(writer, x));
        }
        for u in tree.nodes() {
            if u != writer {
                out.push(Request::combine(u));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_fraction_and_seed() {
        let tree = Tree::kary(9, 2);
        let a = uniform(&tree, 1000, 0.3, 5);
        let b = uniform(&tree, 1000, 0.3, 5);
        assert_eq!(a, b, "seeded generators are deterministic");
        let writes = a.iter().filter(|q| q.op.is_write()).count();
        assert!((250..350).contains(&writes), "writes = {writes}");
    }

    #[test]
    fn uniform_extremes() {
        let tree = Tree::path(4);
        assert!(uniform(&tree, 50, 0.0, 1).iter().all(|q| q.op.is_combine()));
        assert!(uniform(&tree, 50, 1.0, 1).iter().all(|q| q.op.is_write()));
    }

    #[test]
    fn hotspot_separates_roles() {
        let tree = Tree::path(10);
        let seq = hotspot(&tree, 400, 0.5, 2, 3, 9);
        for q in &seq {
            if q.op.is_combine() {
                assert!(q.node.0 < 2);
            } else {
                assert!(q.node.0 >= 7);
            }
        }
    }

    #[test]
    fn phases_concatenate() {
        let tree = Tree::star(5);
        let seq = phases(&tree, &[(100, 0.0), (100, 1.0)], 3);
        assert_eq!(seq.len(), 200);
        assert!(seq[..100].iter().all(|q| q.op.is_combine()));
        assert!(seq[100..].iter().all(|q| q.op.is_write()));
    }

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let tree = Tree::star(50);
        let a = zipf(&tree, 2000, 0.5, 1.0, 9);
        let b = zipf(&tree, 2000, 0.5, 1.0, 9);
        assert_eq!(a, b);
        // The hottest node should absorb far more than 1/50 of traffic.
        let mut counts = vec![0usize; 50];
        for q in &a {
            counts[q.node.idx()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max > 2000 / 50 * 4,
            "zipf skew too weak: hottest node got {max}"
        );
    }

    #[test]
    fn zipf_alpha_controls_skew() {
        let tree = Tree::star(50);
        let skew = |alpha: f64| {
            let seq = zipf(&tree, 4000, 0.0, alpha, 17);
            let mut counts = vec![0usize; 50];
            for q in &seq {
                counts[q.node.idx()] += 1;
            }
            *counts.iter().max().unwrap()
        };
        assert!(skew(1.5) > skew(0.5), "higher alpha = hotter head");
    }

    #[test]
    fn diurnal_swings_between_regimes() {
        let tree = Tree::star(10);
        let seq = diurnal(&tree, 4000, 2.0, 3);
        assert_eq!(seq.len(), 4000);
        // First quarter of a cycle is write-leaning, the trough read-leaning.
        let frac = |range: std::ops::Range<usize>| {
            let writes = seq[range.clone()]
                .iter()
                .filter(|q| q.op.is_write())
                .count();
            writes as f64 / range.len() as f64
        };
        let peak = frac(400..600); // around sin ≈ +1 for 2 cycles
        let trough = frac(1400..1600); // around sin ≈ -1
        assert!(peak > 0.7, "peak write fraction {peak}");
        assert!(trough < 0.3, "trough write fraction {trough}");
    }

    #[test]
    fn bursty_contains_write_runs() {
        let tree = Tree::star(8);
        let seq = bursty(&tree, 500, 0.05, 20, 10, 5);
        assert_eq!(seq.len(), 500);
        // There must exist a run of >= 10 consecutive same-node writes.
        let mut best = 0usize;
        let mut run = 0usize;
        let mut last: Option<NodeId> = None;
        for q in &seq {
            if q.op.is_write() && last == Some(q.node) {
                run += 1;
            } else if q.op.is_write() {
                run = 1;
            } else {
                run = 0;
            }
            last = if q.op.is_write() { Some(q.node) } else { None };
            best = best.max(run);
        }
        assert!(best >= 10, "longest same-node write run {best}");
    }

    #[test]
    fn single_writer_shape() {
        let tree = Tree::star(4);
        let seq = single_writer(&tree, 2, 3, NodeId(0));
        assert_eq!(seq.len(), 2 * (3 + 3));
        assert!(seq[0].op.is_write());
        assert!(seq[3].op.is_combine());
    }
}
