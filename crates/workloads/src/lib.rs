//! # oat-workloads — topology and request-sequence generators
//!
//! The paper motivates dynamic lease management with workloads whose
//! read/write mix varies across nodes and over time (Section 1). This
//! crate generates the synthetic topologies and request sequences used by
//! every experiment:
//!
//! * [`topology`] — random trees (uniform over labelled trees via Prüfer
//!   sequences), random attachment trees, caterpillars, and the core
//!   path/star/k-ary shapes,
//! * [`requests`] — seeded request sequences: uniform mixes, hotspot
//!   readers/writers, phase-shifting mixes (read-heavy ↔ write-heavy),
//!   and single-writer/multi-reader patterns,
//! * [`facts`] — keyed fact streams for the continuous-query layer
//!   (`oat-query`): uniform, Zipf-skewed hot keys, and phase-shifting
//!   interest drift,
//! * [`mlap`] — instances for the second problem family (`oat-mlap`):
//!   the adversarial staggered-deadline spider, bursty deadline
//!   workloads, delay-model arrival streams, and random instances for
//!   property tests.
//!
//! All generators are deterministic in their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod facts;
pub mod mlap;
pub mod requests;
pub mod topology;

pub use facts::{facts_by_name, phase_facts, uniform_facts, zipf_facts, Fact};
pub use requests::{
    bursty, diurnal, hotspot, phases, single_writer, uniform, zipf, WorkloadSpec, ZipfNodes,
};
pub use topology::{caterpillar, random_attachment_tree, random_tree};
