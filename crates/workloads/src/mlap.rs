//! MLAP instance generators: adversarial and bursty deadline workloads,
//! plus delay-model arrival streams and random instances for property
//! tests. All deterministic in their seed.

use oat_core::tree::{NodeId, Tree};
use oat_mlap::{CostModel, MlapInstance, MlapRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn req(node: NodeId, arrival: u64, deadline: Option<u64>) -> MlapRequest {
    MlapRequest {
        node,
        arrival,
        deadline,
    }
}

/// The staggered-deadline spider that stresses the lazy deadline policy
/// toward its `(depth+1)` bound: a path of `depth-1` edges from the
/// root to a hub, and `legs` leaf children under the hub (tree depth =
/// `depth` edges). Every leaf's request arrives at time 0, with
/// deadlines staggered `1, 2, …, legs` — an offline optimum flushes the
/// whole spider once at time 1 (cost `depth + legs`), while the lazy
/// policy pays a full root path per leaf (`legs · (depth+1)`); the
/// ratio approaches `depth+1` as `legs` grows. Unit weights.
pub fn adversarial_deadline(depth: usize, legs: usize) -> MlapInstance {
    assert!(depth >= 1 && legs >= 1, "need depth ≥ 1 and legs ≥ 1");
    let n = depth + legs;
    let mut edges: Vec<(u32, u32)> = (1..depth as u32).map(|v| (v - 1, v)).collect();
    let hub = depth as u32 - 1;
    edges.extend((0..legs as u32).map(|i| (hub, depth as u32 + i)));
    let tree = Tree::from_edges(n, &edges).expect("spider is a tree");
    let requests = (0..legs as u32)
        .map(|i| req(NodeId(depth as u32 + i), 0, Some(u64::from(i) + 1)))
        .collect();
    MlapInstance::unit(tree, CostModel::Deadline, requests).expect("valid instance")
}

/// Bursty deadline workload on an existing tree — the latency-SLO
/// scenario: bursts of `burst` requests land on random nodes at
/// geometric gaps, each with a deadline `arrival + slack`,
/// `slack ∈ [1, window]`. Deadlines cluster inside a burst, so good
/// policies merge most of a burst into few flushes.
pub fn bursty_deadline(
    tree: &Tree,
    bursts: usize,
    burst: usize,
    window: u64,
    seed: u64,
) -> MlapInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = window.max(1);
    let mut t = 0u64;
    let mut requests = Vec::with_capacity(bursts * burst);
    for _ in 0..bursts {
        t += rng.gen_range(1..=2 * window);
        for _ in 0..burst {
            let node = NodeId(rng.gen_range(0..tree.len()) as u32);
            let slack = rng.gen_range(1..=window);
            requests.push(req(node, t, Some(t + slack)));
        }
    }
    MlapInstance::unit(tree.clone(), CostModel::Deadline, requests).expect("valid instance")
}

/// Steady single-request arrivals with no deadlines (MLAP-L): one
/// request per step at a random node, arrival gaps uniform in
/// `[0, gap]`.
pub fn uniform_delay(tree: &Tree, len: usize, gap: u64, seed: u64) -> MlapInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0u64;
    let requests = (0..len)
        .map(|_| {
            t += rng.gen_range(0..=gap);
            req(NodeId(rng.gen_range(0..tree.len()) as u32), t, None)
        })
        .collect();
    MlapInstance::unit(tree.clone(), CostModel::LinearDelay, requests).expect("valid instance")
}

/// Random small instance for property tests: a uniform random tree on
/// `n` nodes, `len` requests at random nodes with arrivals in a small
/// range (so the exact OPT oracle always applies), unit or random
/// weights, and — on deadline instances — slacks in `[0, 6]`.
pub fn random_instance(
    n: usize,
    len: usize,
    model: CostModel,
    unit_weights: bool,
    seed: u64,
) -> MlapInstance {
    let tree = crate::topology::random_tree(n.max(1), seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(seed);
    let requests = (0..len)
        .map(|_| {
            let node = NodeId(rng.gen_range(0..tree.len()) as u32);
            let arrival = rng.gen_range(0..8u64);
            let deadline = match model {
                CostModel::Deadline => Some(arrival + rng.gen_range(0..=6u64)),
                CostModel::LinearDelay => None,
            };
            req(node, arrival, deadline)
        })
        .collect();
    let weight = (0..tree.len())
        .map(|_| {
            if unit_weights {
                1
            } else {
                rng.gen_range(0..8u64)
            }
        })
        .collect();
    MlapInstance::new(tree, weight, model, requests).expect("valid instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_spider_shape_and_requests() {
        let inst = adversarial_deadline(4, 8);
        assert_eq!(inst.tree.len(), 12);
        assert_eq!(inst.depth(), 4);
        assert_eq!(inst.requests.len(), 8);
        // Every request is at a leaf with its staggered deadline.
        for (i, r) in inst.requests.iter().enumerate() {
            assert_eq!(r.arrival, 0);
            assert_eq!(r.deadline, Some(i as u64 + 1));
            assert_eq!(inst.node_depth(r.node), 4);
        }
        // depth=1 degenerates into a star rooted at the hub=root.
        assert_eq!(adversarial_deadline(1, 3).tree.len(), 4);
    }

    #[test]
    fn bursty_deadlines_are_seeded_and_valid() {
        let t = Tree::kary(15, 2);
        let a = bursty_deadline(&t, 4, 3, 4, 7);
        let b = bursty_deadline(&t, 4, 3, 4, 7);
        assert_eq!(a.requests, b.requests, "deterministic in the seed");
        assert_eq!(a.requests.len(), 12);
        assert!(a
            .requests
            .iter()
            .all(|r| r.deadline.unwrap() > r.arrival && r.deadline.unwrap() <= r.arrival + 4));
        assert_ne!(
            bursty_deadline(&t, 4, 3, 4, 8).requests,
            a.requests,
            "seed matters"
        );
    }

    #[test]
    fn uniform_delay_arrivals_are_nondecreasing() {
        let t = Tree::star(8);
        let inst = uniform_delay(&t, 50, 3, 11);
        assert_eq!(inst.model, CostModel::LinearDelay);
        assert!(inst
            .requests
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn random_instances_respect_the_oracle_cap() {
        for seed in 0..10 {
            let inst = random_instance(6, 8, CostModel::Deadline, false, seed);
            let mut ds: Vec<u64> = inst.requests.iter().filter_map(|r| r.deadline).collect();
            ds.sort_unstable();
            ds.dedup();
            assert!(ds.len() <= 8, "≤ len distinct deadlines");
        }
    }
}
