//! Random and structured tree topologies.
//!
//! Aggregation frameworks build their trees in different ways — DHT
//! routing trees (SDIMS), administrative hierarchies (Astrolabe), spanning
//! trees (MDS-2). These generators cover the structural extremes: paths
//! (maximum depth), stars (maximum fan-out), caterpillars (path with
//! leaves), uniform random labelled trees (Prüfer), and random-attachment
//! trees (shallow, skewed degrees).

use oat_core::tree::Tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A uniformly random labelled tree on `n` nodes, decoded from a random
/// Prüfer sequence. `n ≥ 1`.
pub fn random_tree(n: usize, seed: u64) -> Tree {
    assert!(n >= 1);
    if n == 1 {
        return Tree::from_edges(1, &[]).expect("single node");
    }
    if n == 2 {
        return Tree::pair();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let prufer: Vec<u32> = (0..n - 2).map(|_| rng.gen_range(0..n as u32)).collect();

    let mut degree = vec![1u32; n];
    for &p in &prufer {
        degree[p as usize] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Min-leaf decoding via a simple scan pointer (O(n log n)-ish with a
    // heap would be nicer; n here is ≤ a few thousand).
    let mut leaf_heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n as u32)
        .filter(|&i| degree[i as usize] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &p in &prufer {
        let std::cmp::Reverse(leaf) = leaf_heap.pop().expect("a leaf always exists");
        edges.push((leaf, p));
        degree[p as usize] -= 1;
        if degree[p as usize] == 1 {
            leaf_heap.push(std::cmp::Reverse(p));
        }
    }
    let std::cmp::Reverse(a) = leaf_heap.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = leaf_heap.pop().expect("two leaves remain");
    edges.push((a, b));
    Tree::from_edges(n, &edges).expect("Prüfer decoding yields a tree")
}

/// A random-attachment tree: node `i` attaches to a uniformly random
/// earlier node. Produces shallow trees with skewed degrees.
pub fn random_attachment_tree(n: usize, seed: u64) -> Tree {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (rng.gen_range(0..i), i)).collect();
    Tree::from_edges(n, &edges).expect("attachment yields a tree")
}

/// A caterpillar: a spine path of length `spine`, each spine node with
/// `legs` leaf children. Total nodes: `spine * (legs + 1)`.
pub fn caterpillar(spine: usize, legs: usize) -> Tree {
    assert!(spine >= 1);
    let n = spine * (legs + 1);
    let mut edges = Vec::with_capacity(n - 1);
    // Spine nodes are 0..spine.
    for i in 1..spine as u32 {
        edges.push((i - 1, i));
    }
    let mut next = spine as u32;
    for s in 0..spine as u32 {
        for _ in 0..legs {
            edges.push((s, next));
            next += 1;
        }
    }
    Tree::from_edges(n, &edges).expect("caterpillar is a tree")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tree_is_valid_and_deterministic() {
        for n in [1, 2, 3, 10, 64] {
            let t1 = random_tree(n, 42);
            let t2 = random_tree(n, 42);
            assert_eq!(t1.len(), n);
            assert_eq!(t1.undirected_edges(), t2.undirected_edges());
        }
        let a = random_tree(20, 1);
        let b = random_tree(20, 2);
        assert_ne!(
            a.undirected_edges(),
            b.undirected_edges(),
            "different seeds should differ (overwhelmingly likely)"
        );
    }

    #[test]
    fn prufer_statistics_smell_right() {
        // In a uniform labelled tree the expected number of leaves is
        // about n/e; just sanity-check we aren't generating paths/stars.
        let t = random_tree(200, 7);
        let leaves = t.nodes().filter(|&u| t.degree(u) == 1).count();
        assert!(leaves > 40 && leaves < 140, "leaves = {leaves}");
    }

    #[test]
    fn attachment_tree_depth_is_shallow() {
        let t = random_attachment_tree(128, 3);
        let max_depth = t
            .nodes()
            .map(|u| t.distance(oat_core::tree::NodeId(0), u))
            .max()
            .unwrap();
        assert!(max_depth < 30, "depth {max_depth} too large");
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(4, 2);
        assert_eq!(t.len(), 12);
        // Spine interior nodes: 2 spine edges + 2 legs = degree 4.
        assert_eq!(t.degree(oat_core::tree::NodeId(1)), 4);
        // Legs are leaves.
        assert_eq!(t.degree(oat_core::tree::NodeId(11)), 1);
    }
}
