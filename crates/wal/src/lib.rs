//! # oat-wal
//!
//! Per-node durability for the TCP runtime (`oat-net`): an append-only
//! write-ahead log plus periodic snapshots, built so a node can be
//! SIGKILLed mid-request and rejoin the tree with its write history and
//! exactly-once edge sequencing intact.
//!
//! ## Log format
//!
//! The log (`wal.log`) is a sequence of records, each framed as
//!
//! ```text
//! [u32 len][u32 crc32(payload)][payload]        (little-endian)
//! ```
//!
//! where `payload[0]` is a record type tag followed by type-specific
//! fields (see [`Record`]). Recovery replays records in order and stops
//! at the first short, oversized, or CRC-failing record — a torn tail is
//! *expected* after a machine crash, never an error, and the number of
//! discarded bytes is reported ([`Recovered::torn_bytes`]).
//!
//! ## Group commit
//!
//! Every [`Wal::append`] issues a `write(2)` immediately (there is no
//! userspace buffering, so an in-process kill loses nothing that was
//! appended), but `fsync` is batched: the log is synced once per
//! [`WalOptions::fsync_every`] records. Two record classes override the
//! batch and force a sync on append — [`Record::Write`] (a client write
//! is acknowledged only after it is durable) and [`Record::Epoch`]
//! (incarnation bumps must never regress). Only the batched region is at
//! risk from a power loss, which is exactly what the seeded `torn-tail`
//! disk fault simulates.
//!
//! ## Snapshots
//!
//! When [`WalOptions::snapshot_every`] records have accumulated, the
//! runtime folds its state into a [`WalState`] and calls
//! [`Wal::snapshot`]: the blob is written to `snap.tmp`, fsynced,
//! atomically renamed to `snap` (then the directory is synced), and the
//! log is truncated to zero. Recovery seeds its replay from `snap` when
//! present; a corrupt or torn snapshot is ignored (the log then replays
//! from empty state), and a leftover `snap.tmp` from an interrupted
//! snapshot is deleted.
//!
//! ## Disk faults
//!
//! [`DiskFaults`] injects two seeded failure modes for chaos testing:
//! `torn_tail_max` chops up to that many *unsynced* bytes off the log
//! tail at the start of each recovery (modelling a machine crash that
//! lost the page cache), and `fsync_fail_p` makes each log fsync fail
//! silently with that probability (the synced watermark does not
//! advance; the next group commit retries). Both are counted in
//! [`WalCounters`] so the chaos ledger can record them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use oat_obs::trace_event;

/// Hard cap on a single record's payload, mirroring the wire codec's
/// 64 MiB frame cap with headroom to spare: anything larger in the
/// length field is corruption, not data.
pub const MAX_RECORD: u32 = 16 << 20;

/// Magic prefix of a snapshot file (`snap`).
pub const SNAP_MAGIC: &[u8; 8] = b"OATSNAP1";

const LOG_FILE: &str = "wal.log";
const SNAP_FILE: &str = "snap";
const SNAP_TMP: &str = "snap.tmp";

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), hand-rolled: the environment is offline, so no
// crc32fast — a 256-entry table built at compile time is plenty for WAL
// record sizes.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the polynomial used by zip, png, ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One durable state transition. The runtime logs a record *before* the
/// corresponding side effect becomes externally visible (write-ahead).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A client write was accepted: `val` is the wire encoding of the
    /// node's new durable value. Forces an fsync — the client's ack is
    /// a durability promise.
    Write {
        /// Wire-encoded aggregate value.
        val: Vec<u8>,
    },
    /// An edge frame was assigned sequence number `seq` toward `peer`.
    /// Replay rebuilds the retransmit buffer from unacked `Send`s.
    Send {
        /// Destination neighbour id.
        peer: u32,
        /// Per-directed-edge sequence number (1-based).
        seq: u64,
        /// Inner frame tag (`INNER_NET` / `INNER_RESET` / `INNER_REVOKE`).
        inner: u8,
        /// Inner frame body bytes.
        body: Vec<u8>,
    },
    /// Frames from `peer` were delivered up to and including `rx_seq`.
    Rx {
        /// Source neighbour id.
        peer: u32,
        /// Cumulative receive watermark.
        rx_seq: u64,
    },
    /// `peer` acknowledged our frames up to and including `acked`.
    Ack {
        /// Destination neighbour id.
        peer: u32,
        /// Cumulative acknowledgement watermark.
        acked: u64,
    },
    /// The lease state on the edge toward `peer` changed. `bits` packs
    /// (granted << 1) | taken, mirroring the mechanism's two lease
    /// directions.
    Lease {
        /// Neighbour id.
        peer: u32,
        /// Packed lease flags.
        bits: u8,
    },
    /// The node's incarnation epoch advanced. Forces an fsync.
    Epoch {
        /// New epoch value.
        epoch: u64,
    },
}

impl Record {
    /// The payload type tag (first payload byte).
    pub fn tag(&self) -> u8 {
        match self {
            Record::Write { .. } => 1,
            Record::Send { .. } => 2,
            Record::Rx { .. } => 3,
            Record::Ack { .. } => 4,
            Record::Lease { .. } => 5,
            Record::Epoch { .. } => 6,
        }
    }

    /// Whether this record overrides group commit and syncs on append.
    pub fn forces_sync(&self) -> bool {
        matches!(self, Record::Write { .. } | Record::Epoch { .. })
    }

    /// Appends this record's payload (tag + fields) to `out`.
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            Record::Write { val } => out.extend_from_slice(val),
            Record::Send {
                peer,
                seq,
                inner,
                body,
            } => {
                out.extend_from_slice(&peer.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.push(*inner);
                out.extend_from_slice(body);
            }
            Record::Rx { peer, rx_seq } => {
                out.extend_from_slice(&peer.to_le_bytes());
                out.extend_from_slice(&rx_seq.to_le_bytes());
            }
            Record::Ack { peer, acked } => {
                out.extend_from_slice(&peer.to_le_bytes());
                out.extend_from_slice(&acked.to_le_bytes());
            }
            Record::Lease { peer, bits } => {
                out.extend_from_slice(&peer.to_le_bytes());
                out.push(*bits);
            }
            Record::Epoch { epoch } => out.extend_from_slice(&epoch.to_le_bytes()),
        }
    }

    /// Decodes a record from a CRC-verified payload. `None` means the
    /// payload is structurally invalid (short fields) or carries an
    /// unknown tag — replay treats the former as corruption and the
    /// latter as a skippable future record; this function cannot tell
    /// them apart, so it returns `None` for both and replay decides by
    /// tag range.
    pub fn decode_payload(payload: &[u8]) -> Option<Record> {
        let mut r = Cursor::new(payload);
        let rec = match r.u8()? {
            1 => Record::Write {
                val: r.rest().to_vec(),
            },
            2 => {
                let peer = r.u32()?;
                let seq = r.u64()?;
                let inner = r.u8()?;
                Record::Send {
                    peer,
                    seq,
                    inner,
                    body: r.rest().to_vec(),
                }
            }
            3 => Record::Rx {
                peer: r.u32()?,
                rx_seq: r.u64()?,
            },
            4 => Record::Ack {
                peer: r.u32()?,
                acked: r.u64()?,
            },
            5 => Record::Lease {
                peer: r.u32()?,
                bits: r.u8()?,
            },
            6 => Record::Epoch { epoch: r.u64()? },
            _ => return None,
        };
        Some(rec)
    }
}

/// Encodes one record with its `[len][crc]` frame, appending to `out`.
pub fn encode_record(rec: &Record, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; 8]); // frame header placeholder
    rec.encode_payload(out);
    let payload_len = (out.len() - start - 8) as u32;
    let crc = crc32(&out[start + 8..]);
    out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.buf.get(self.at..end)?;
        self.at = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.at..];
        self.at = self.buf.len();
        s
    }
}

// ---------------------------------------------------------------------------
// Recovered state
// ---------------------------------------------------------------------------

/// Durable state of one directed-edge pair (us ↔ `peer`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkState {
    /// Neighbour id.
    pub peer: u32,
    /// Highest sequence number we assigned toward `peer`.
    pub tx_seq: u64,
    /// Highest of our frames `peer` has acknowledged.
    pub acked: u64,
    /// Highest frame from `peer` we delivered.
    pub rx_seq: u64,
    /// Last logged lease flags ((granted << 1) | taken).
    pub lease: u8,
    /// Unacknowledged sends, ascending by sequence number:
    /// `(seq, inner_tag, body)` — the recovered retransmit buffer.
    pub rtx: Vec<(u64, u8, Vec<u8>)>,
}

/// The full durable image of a node: what a snapshot stores and what
/// replay produces.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalState {
    /// Incarnation epoch (highest logged).
    pub epoch: u64,
    /// Wire encoding of the last acknowledged write, if any.
    pub val: Option<Vec<u8>>,
    /// Per-neighbour link state, sorted by peer id.
    pub links: Vec<LinkState>,
}

/// The outcome of replaying a log (optionally seeded from a snapshot).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Replay {
    /// The folded state.
    pub state: WalState,
    /// Valid records applied.
    pub records: u64,
    /// Bytes of log discarded at the first short/oversized/CRC-failing
    /// record.
    pub torn_bytes: u64,
    /// Offset of the end of the valid prefix (where appends may resume).
    pub valid_len: u64,
    /// CRC-valid records with an unknown type tag, skipped.
    pub skipped: u64,
}

/// What [`Wal::recover`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// The recovered state (empty/default when nothing was durable).
    pub state: WalState,
    /// True when a snapshot or at least one log record existed — i.e.
    /// this is a restart, not a first boot.
    pub found: bool,
    /// Log records replayed (excludes the snapshot).
    pub records: u64,
    /// Log bytes discarded as a torn tail (including any injected chop).
    pub torn_bytes: u64,
}

fn fold(state: &mut WalState, rec: &Record) {
    match rec {
        Record::Write { val } => state.val = Some(val.clone()),
        Record::Send {
            peer,
            seq,
            inner,
            body,
        } => {
            let link = link_mut(state, *peer);
            link.tx_seq = link.tx_seq.max(*seq);
            if *seq > link.acked {
                link.rtx.push((*seq, *inner, body.clone()));
            }
        }
        Record::Rx { peer, rx_seq } => {
            let link = link_mut(state, *peer);
            link.rx_seq = link.rx_seq.max(*rx_seq);
        }
        Record::Ack { peer, acked } => {
            let link = link_mut(state, *peer);
            link.acked = link.acked.max(*acked);
            let upto = link.acked;
            link.rtx.retain(|(seq, _, _)| *seq > upto);
        }
        Record::Lease { peer, bits } => link_mut(state, *peer).lease = *bits,
        Record::Epoch { epoch } => state.epoch = state.epoch.max(*epoch),
    }
}

fn link_mut(state: &mut WalState, peer: u32) -> &mut LinkState {
    // Links stay sorted by peer; trees are narrow so a linear probe wins.
    match state.links.binary_search_by_key(&peer, |l| l.peer) {
        Ok(i) => &mut state.links[i],
        Err(i) => {
            state.links.insert(
                i,
                LinkState {
                    peer,
                    ..LinkState::default()
                },
            );
            &mut state.links[i]
        }
    }
}

/// Replays a raw log buffer on top of `base`, stopping at the first
/// torn or corrupt record. Pure — this is the function the fuzz tests
/// hammer; [`Wal::recover`] is a thin I/O wrapper around it.
pub fn replay_log(base: WalState, log: &[u8]) -> Replay {
    let mut out = Replay {
        state: base,
        ..Replay::default()
    };
    let mut at = 0usize;
    while let Some(header) = log.get(at..at + 8) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len == 0 || len > MAX_RECORD {
            break;
        }
        let Some(payload) = log.get(at + 8..at + 8 + len as usize) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        match Record::decode_payload(payload) {
            Some(rec) => {
                fold(&mut out.state, &rec);
                out.records += 1;
            }
            None => out.skipped += 1,
        }
        at += 8 + len as usize;
    }
    out.valid_len = at as u64;
    out.torn_bytes = (log.len() - at) as u64;
    out
}

/// Encodes a snapshot blob (magic + framed, CRC-protected state).
pub fn encode_snapshot(state: &WalState) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&state.epoch.to_le_bytes());
    match &state.val {
        Some(v) => {
            payload.push(1);
            payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
            payload.extend_from_slice(v);
        }
        None => payload.push(0),
    }
    payload.extend_from_slice(&(state.links.len() as u32).to_le_bytes());
    for l in &state.links {
        payload.extend_from_slice(&l.peer.to_le_bytes());
        payload.extend_from_slice(&l.tx_seq.to_le_bytes());
        payload.extend_from_slice(&l.acked.to_le_bytes());
        payload.extend_from_slice(&l.rx_seq.to_le_bytes());
        payload.push(l.lease);
        payload.extend_from_slice(&(l.rtx.len() as u32).to_le_bytes());
        for (seq, inner, body) in &l.rtx {
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.push(*inner);
            payload.extend_from_slice(&(body.len() as u32).to_le_bytes());
            payload.extend_from_slice(body);
        }
    }
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a snapshot file. `None` for anything short, misframed, or
/// CRC-failing — recovery then falls back to replaying the log from
/// empty state. Never panics.
pub fn decode_snapshot(bytes: &[u8]) -> Option<WalState> {
    let mut r = Cursor::new(bytes);
    if r.take(8)? != SNAP_MAGIC {
        return None;
    }
    let len = r.u32()? as usize;
    let crc = r.u32()?;
    let payload = r.take(len)?;
    if crc32(payload) != crc {
        return None;
    }
    let mut p = Cursor::new(payload);
    let mut state = WalState {
        epoch: p.u64()?,
        ..WalState::default()
    };
    if p.u8()? != 0 {
        let n = p.u32()? as usize;
        state.val = Some(p.take(n)?.to_vec());
    }
    let nlinks = p.u32()?;
    let mut links = BTreeMap::new();
    for _ in 0..nlinks {
        let peer = p.u32()?;
        let mut link = LinkState {
            peer,
            tx_seq: p.u64()?,
            acked: p.u64()?,
            rx_seq: p.u64()?,
            lease: p.u8()?,
            rtx: Vec::new(),
        };
        let nrtx = p.u32()?;
        for _ in 0..nrtx {
            let seq = p.u64()?;
            let inner = p.u8()?;
            let blen = p.u32()? as usize;
            link.rtx.push((seq, inner, p.take(blen)?.to_vec()));
        }
        links.insert(peer, link);
    }
    state.links = links.into_values().collect();
    Some(state)
}

// ---------------------------------------------------------------------------
// Counters, options, faults
// ---------------------------------------------------------------------------

/// Monotone durability counters, surfaced in `NodeMetrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalCounters {
    /// Records appended to the log.
    pub records: u64,
    /// Bytes appended to the log (frames included).
    pub appended_bytes: u64,
    /// Successful log fsyncs.
    pub fsyncs: u64,
    /// Log fsyncs failed by the `fsync-fail` disk fault.
    pub fsync_failures: u64,
    /// Recoveries that found durable state to replay.
    pub replays: u64,
    /// Log bytes discarded as torn tails across all recoveries.
    pub torn_bytes: u64,
    /// Torn-tail faults injected (recoveries where the fault chopped).
    pub torn_events: u64,
    /// Snapshots written (each truncates the log).
    pub snapshots: u64,
    /// Append/snapshot I/O errors swallowed (availability over
    /// durability; see `Wal::append`).
    pub io_errors: u64,
}

impl WalCounters {
    /// Accumulates `other` into `self`, field by field — used to sum
    /// per-node counters into a cluster-wide report.
    pub fn merge(&mut self, other: &WalCounters) {
        self.records += other.records;
        self.appended_bytes += other.appended_bytes;
        self.fsyncs += other.fsyncs;
        self.fsync_failures += other.fsync_failures;
        self.replays += other.replays;
        self.torn_bytes += other.torn_bytes;
        self.torn_events += other.torn_events;
        self.snapshots += other.snapshots;
        self.io_errors += other.io_errors;
    }
}

/// Seeded disk-fault injection knobs (see crate docs).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiskFaults {
    /// RNG seed (deterministic per node).
    pub seed: u64,
    /// Max unsynced bytes chopped off the log tail per recovery
    /// (0 = disabled).
    pub torn_tail_max: u64,
    /// Probability each log fsync silently fails (0.0 = disabled).
    pub fsync_fail_p: f64,
}

/// Tuning and identification for one node's [`Wal`].
#[derive(Clone, Debug, PartialEq)]
pub struct WalOptions {
    /// Node id, used only to label obs events.
    pub node: u32,
    /// Group-commit batch: fsync once per this many records (≥ 1).
    /// `Write` and `Epoch` records always sync regardless.
    pub fsync_every: u64,
    /// Snapshot (and truncate the log) after this many records.
    pub snapshot_every: u64,
    /// Optional seeded disk faults.
    pub faults: Option<DiskFaults>,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            node: 0,
            fsync_every: 8,
            snapshot_every: 4096,
            faults: None,
        }
    }
}

// SplitMix64 — same generator the fault plan uses, so disk faults are
// reproducible from the plan seed alone.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn splitmix_f64(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------------
// The Wal itself
// ---------------------------------------------------------------------------

/// One node's durable log + snapshot pair rooted at a directory.
pub struct Wal {
    dir: PathBuf,
    log: File,
    /// Current end-of-log offset (where the next append lands).
    log_len: u64,
    /// Offset covered by the last successful fsync. Pre-existing file
    /// content at open is assumed synced (the previous process exited;
    /// its page cache writes are durable or already lost).
    synced_len: u64,
    /// Records appended since the last successful fsync.
    pending: u64,
    records_since_snapshot: u64,
    opts: WalOptions,
    rng: u64,
    counters: WalCounters,
    buf: Vec<u8>,
}

impl Wal {
    /// Opens (creating if needed) the log under `dir`. Does **not**
    /// replay — call [`Wal::recover`] for that.
    pub fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> io::Result<Wal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(LOG_FILE))?;
        let log_len = log.metadata()?.len();
        let rng = opts.faults.map(|f| f.seed).unwrap_or(0) ^ ((opts.node as u64) << 32);
        Ok(Wal {
            dir,
            log,
            log_len,
            synced_len: log_len,
            pending: 0,
            records_since_snapshot: 0,
            opts,
            rng,
            counters: WalCounters::default(),
            buf: Vec::with_capacity(256),
        })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current counter values.
    pub fn counters(&self) -> WalCounters {
        self.counters
    }

    /// Appends one record (`write(2)` now, fsync per group commit).
    ///
    /// An I/O error is counted and returned; the runtime's policy is to
    /// count-and-continue (availability over durability) because a node
    /// that halts on a full disk takes its whole subtree's aggregate
    /// with it.
    pub fn append(&mut self, rec: &Record) -> io::Result<()> {
        self.buf.clear();
        let mut buf = std::mem::take(&mut self.buf);
        encode_record(rec, &mut buf);
        let res = self.log.write_all(&buf);
        let len = buf.len() as u64;
        self.buf = buf;
        if let Err(e) = res {
            self.counters.io_errors += 1;
            return Err(e);
        }
        self.log_len += len;
        self.counters.records += 1;
        self.counters.appended_bytes += len;
        self.pending += 1;
        self.records_since_snapshot += 1;
        trace_event!(
            oat_obs::EventKind::WalAppend,
            self.opts.node,
            rec.tag() as u32,
            len
        );
        if rec.forces_sync() || self.pending >= self.opts.fsync_every.max(1) {
            self.fsync_log()?;
        }
        Ok(())
    }

    /// Explicit group-commit point: fsyncs if anything is pending.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.pending > 0 {
            self.fsync_log()?;
        }
        Ok(())
    }

    fn fsync_log(&mut self) -> io::Result<()> {
        if let Some(f) = self.opts.faults {
            if f.fsync_fail_p > 0.0 && splitmix_f64(&mut self.rng) < f.fsync_fail_p {
                // Injected transient failure: the batch stays unsynced
                // and is retried at the next commit point.
                self.counters.fsync_failures += 1;
                return Ok(());
            }
        }
        self.log.sync_data()?;
        let n = self.pending;
        self.pending = 0;
        self.synced_len = self.log_len;
        self.counters.fsyncs += 1;
        trace_event!(oat_obs::EventKind::WalFsync, self.opts.node, 0, n);
        Ok(())
    }

    /// True once enough records have accumulated that the runtime
    /// should fold its state and call [`Wal::snapshot`].
    pub fn wants_snapshot(&self) -> bool {
        self.opts.snapshot_every > 0 && self.records_since_snapshot >= self.opts.snapshot_every
    }

    /// Writes `state` as the new snapshot (tmp + fsync + atomic rename
    /// + directory sync) and truncates the log.
    pub fn snapshot(&mut self, state: &WalState) -> io::Result<()> {
        let res = self.snapshot_inner(state);
        if res.is_err() {
            self.counters.io_errors += 1;
        }
        res
    }

    fn snapshot_inner(&mut self, state: &WalState) -> io::Result<()> {
        let blob = encode_snapshot(state);
        let tmp = self.dir.join(SNAP_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&blob)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.dir.join(SNAP_FILE))?;
        // Persist the rename itself before truncating the log it
        // replaces.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.log.set_len(0)?;
        self.log_len = 0;
        self.synced_len = 0;
        self.pending = 0;
        self.records_since_snapshot = 0;
        self.counters.snapshots += 1;
        Ok(())
    }

    /// Recovers durable state: injects the torn-tail fault (if armed),
    /// seeds from the snapshot, replays the log's valid prefix, and
    /// truncates any torn tail so appends resume cleanly. Never panics
    /// on corrupt input.
    pub fn recover(&mut self) -> io::Result<Recovered> {
        // A leftover tmp from an interrupted snapshot is garbage by
        // definition (the rename never happened).
        let _ = fs::remove_file(self.dir.join(SNAP_TMP));

        // Torn-tail injection: chop up to `torn_tail_max` bytes, but
        // never below the synced watermark — fsynced data survives any
        // crash, and the write-ack durability contract depends on that.
        if let Some(f) = self.opts.faults {
            let unsynced = self.log_len.saturating_sub(self.synced_len);
            if f.torn_tail_max > 0 && unsynced > 0 {
                let chop = 1 + splitmix(&mut self.rng) % f.torn_tail_max.min(unsynced);
                self.log_len -= chop;
                self.log.set_len(self.log_len)?;
                self.counters.torn_events += 1;
            }
        }

        let base = match fs::read(self.dir.join(SNAP_FILE)) {
            Ok(bytes) => decode_snapshot(&bytes),
            Err(_) => None,
        };
        let had_snapshot = base.is_some();
        let log = fs::read(self.dir.join(LOG_FILE))?;
        let replay = replay_log(base.unwrap_or_default(), &log);

        if replay.torn_bytes > 0 {
            // Truncate to the valid prefix so new records don't append
            // after garbage.
            self.log.set_len(replay.valid_len)?;
        }
        self.log_len = replay.valid_len;
        self.synced_len = self.synced_len.min(self.log_len);
        self.pending = 0;

        let found = had_snapshot || replay.records > 0;
        if found {
            self.counters.replays += 1;
        }
        self.counters.torn_bytes += replay.torn_bytes;
        trace_event!(
            oat_obs::EventKind::WalRecover,
            self.opts.node,
            replay.torn_bytes as u32,
            replay.records
        );
        Ok(Recovered {
            state: replay.state,
            found,
            records: replay.records,
            torn_bytes: replay.torn_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("oat-wal-test-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn record_payloads_roundtrip() {
        let recs = [
            Record::Write { val: vec![1, 2, 3] },
            Record::Send {
                peer: 7,
                seq: 42,
                inner: 2,
                body: vec![9; 5],
            },
            Record::Rx {
                peer: 1,
                rx_seq: 10,
            },
            Record::Ack { peer: 1, acked: 9 },
            Record::Lease {
                peer: 3,
                bits: 0b10,
            },
            Record::Epoch { epoch: 4 },
        ];
        for rec in &recs {
            let mut buf = Vec::new();
            rec.encode_payload(&mut buf);
            assert_eq!(Record::decode_payload(&buf).as_ref(), Some(rec));
        }
    }

    #[test]
    fn replay_folds_watermarks_and_rtx() {
        let mut log = Vec::new();
        for rec in [
            Record::Epoch { epoch: 1 },
            Record::Send {
                peer: 2,
                seq: 1,
                inner: 0,
                body: vec![0xAA],
            },
            Record::Send {
                peer: 2,
                seq: 2,
                inner: 0,
                body: vec![0xBB],
            },
            Record::Rx { peer: 2, rx_seq: 5 },
            Record::Ack { peer: 2, acked: 1 },
            Record::Write { val: vec![7] },
        ] {
            encode_record(&rec, &mut log);
        }
        let r = replay_log(WalState::default(), &log);
        assert_eq!(r.records, 6);
        assert_eq!(r.torn_bytes, 0);
        assert_eq!(r.state.epoch, 1);
        assert_eq!(r.state.val.as_deref(), Some(&[7u8][..]));
        let link = &r.state.links[0];
        assert_eq!(
            (link.peer, link.tx_seq, link.acked, link.rx_seq),
            (2, 2, 1, 5)
        );
        assert_eq!(
            link.rtx,
            vec![(2, 0, vec![0xBB])],
            "acked sends are trimmed"
        );
    }

    #[test]
    fn replay_stops_at_torn_tail_and_reports_it() {
        let mut log = Vec::new();
        encode_record(&Record::Rx { peer: 1, rx_seq: 3 }, &mut log);
        let whole = log.len();
        encode_record(&Record::Rx { peer: 1, rx_seq: 4 }, &mut log);
        for cut in whole + 1..log.len() {
            let r = replay_log(WalState::default(), &log[..cut]);
            assert_eq!(r.records, 1, "cut at {cut}");
            assert_eq!(r.valid_len, whole as u64);
            assert_eq!(r.torn_bytes, (cut - whole) as u64);
            assert_eq!(r.state.links[0].rx_seq, 3);
        }
    }

    #[test]
    fn replay_stops_at_crc_mismatch() {
        let mut log = Vec::new();
        encode_record(&Record::Rx { peer: 1, rx_seq: 3 }, &mut log);
        encode_record(&Record::Rx { peer: 1, rx_seq: 4 }, &mut log);
        let n = log.len();
        log[n - 1] ^= 0x40; // corrupt the final record's body
        let r = replay_log(WalState::default(), &log);
        assert_eq!(r.records, 1);
        assert!(r.torn_bytes > 0);
        assert_eq!(r.state.links[0].rx_seq, 3);
    }

    #[test]
    fn snapshot_blob_roundtrips() {
        let state = WalState {
            epoch: 9,
            val: Some(vec![1, 2, 3]),
            links: vec![LinkState {
                peer: 4,
                tx_seq: 100,
                acked: 98,
                rx_seq: 55,
                lease: 3,
                rtx: vec![(99, 1, vec![]), (100, 0, vec![5, 6])],
            }],
        };
        let blob = encode_snapshot(&state);
        assert_eq!(decode_snapshot(&blob), Some(state));
        assert_eq!(
            decode_snapshot(&blob[..blob.len() - 1]),
            None,
            "torn snapshot ignored"
        );
        let mut bad = blob.clone();
        bad[20] ^= 1;
        assert_eq!(decode_snapshot(&bad), None, "bit-flipped snapshot ignored");
    }

    #[test]
    fn wal_append_recover_cycle() {
        let dir = tmpdir("cycle");
        let mut wal = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(!wal.recover().unwrap().found, "fresh dir has nothing");
        wal.append(&Record::Write { val: vec![42] }).unwrap();
        wal.append(&Record::Send {
            peer: 1,
            seq: 1,
            inner: 0,
            body: vec![1],
        })
        .unwrap();
        drop(wal);

        let mut wal = Wal::open(&dir, WalOptions::default()).unwrap();
        let rec = wal.recover().unwrap();
        assert!(rec.found);
        assert_eq!(rec.records, 2);
        assert_eq!(rec.state.val.as_deref(), Some(&[42u8][..]));
        assert_eq!(rec.state.links[0].rtx.len(), 1);
        assert_eq!(wal.counters().replays, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_log_and_seeds_recovery() {
        let dir = tmpdir("snap");
        let mut wal = Wal::open(
            &dir,
            WalOptions {
                snapshot_every: 1,
                ..WalOptions::default()
            },
        )
        .unwrap();
        wal.append(&Record::Write { val: vec![9] }).unwrap();
        assert!(wal.wants_snapshot());
        let state = WalState {
            epoch: 2,
            val: Some(vec![9]),
            links: vec![],
        };
        wal.snapshot(&state).unwrap();
        assert_eq!(fs::metadata(dir.join(LOG_FILE)).unwrap().len(), 0);
        wal.append(&Record::Rx { peer: 1, rx_seq: 7 }).unwrap();
        drop(wal);

        let mut wal = Wal::open(&dir, WalOptions::default()).unwrap();
        let rec = wal.recover().unwrap();
        assert!(rec.found);
        assert_eq!(rec.state.epoch, 2, "epoch came from the snapshot");
        assert_eq!(rec.state.val.as_deref(), Some(&[9u8][..]));
        assert_eq!(
            rec.state.links[0].rx_seq, 7,
            "post-snapshot log applied on top"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_snapshot_tmp_is_ignored_and_removed() {
        let dir = tmpdir("tmpfile");
        let mut wal = Wal::open(&dir, WalOptions::default()).unwrap();
        wal.append(&Record::Write { val: vec![1] }).unwrap();
        fs::write(dir.join(SNAP_TMP), b"half-written garbage").unwrap();
        let rec = wal.recover().unwrap();
        assert_eq!(rec.state.val.as_deref(), Some(&[1u8][..]));
        assert!(!dir.join(SNAP_TMP).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_fsyncs_but_writes_force_them() {
        let dir = tmpdir("fsync");
        let mut wal = Wal::open(
            &dir,
            WalOptions {
                fsync_every: 100,
                ..WalOptions::default()
            },
        )
        .unwrap();
        for i in 0..10 {
            wal.append(&Record::Rx { peer: 1, rx_seq: i }).unwrap();
        }
        assert_eq!(wal.counters().fsyncs, 0, "batch not reached");
        wal.append(&Record::Write { val: vec![1] }).unwrap();
        assert_eq!(wal.counters().fsyncs, 1, "write forces the sync");
        wal.sync().unwrap();
        assert_eq!(
            wal.counters().fsyncs,
            1,
            "nothing pending after forced sync"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_fault_chops_only_unsynced_bytes() {
        let dir = tmpdir("torn");
        let faults = DiskFaults {
            seed: 7,
            torn_tail_max: 1 << 20,
            fsync_fail_p: 0.0,
        };
        let opts = WalOptions {
            fsync_every: 1000,
            faults: Some(faults),
            ..WalOptions::default()
        };
        let mut wal = Wal::open(&dir, opts).unwrap();
        wal.append(&Record::Write { val: vec![5] }).unwrap(); // forces sync
        for i in 0..20 {
            wal.append(&Record::Rx { peer: 1, rx_seq: i }).unwrap(); // unsynced
        }
        let rec = wal.recover().unwrap();
        assert_eq!(wal.counters().torn_events, 1, "fault fired");
        assert!(rec.torn_bytes > 0);
        assert_eq!(
            rec.state.val.as_deref(),
            Some(&[5u8][..]),
            "synced write survives"
        );
        assert!(
            rec.state.links.first().map_or(0, |l| l.rx_seq) < 20,
            "tail records lost"
        );

        // Appends resume cleanly after the truncation, and synced bytes
        // are immune to the fault on the next recovery.
        wal.append(&Record::Rx {
            peer: 1,
            rx_seq: 99,
        })
        .unwrap();
        wal.sync().unwrap();
        let rec2 = wal.recover().unwrap();
        assert_eq!(
            wal.counters().torn_events,
            1,
            "nothing unsynced, fault idle"
        );
        assert_eq!(rec2.state.links[0].rx_seq, 99);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_fail_fault_counts_and_stays_transient() {
        let dir = tmpdir("fsyncfail");
        let faults = DiskFaults {
            seed: 3,
            torn_tail_max: 0,
            fsync_fail_p: 1.0,
        };
        let opts = WalOptions {
            fsync_every: 1,
            faults: Some(faults),
            ..WalOptions::default()
        };
        let mut wal = Wal::open(&dir, opts).unwrap();
        for i in 0..5 {
            wal.append(&Record::Rx { peer: 1, rx_seq: i }).unwrap();
        }
        let c = wal.counters();
        assert_eq!(c.fsyncs, 0);
        assert_eq!(c.fsync_failures, 5);
        // The data itself was written — recovery still sees it.
        assert_eq!(wal.recover().unwrap().state.links[0].rx_seq, 4);
        let _ = fs::remove_dir_all(&dir);
    }
}
