//! # oat-consistency — strict and causal consistency checkers
//!
//! The paper evaluates lease-based aggregation along two consistency
//! axes:
//!
//! * **Strict consistency** (Section 2): every combine returns
//!   `f(A(σ,q))`, the aggregate over the most recent write per node.
//!   Lemma 3.12: *any* lease-based algorithm provides it in sequential
//!   executions. [`strict`] implements the oracle check.
//! * **Causal consistency** (Section 5): in concurrent executions, the
//!   execution history must be *compatible* with a causally consistent
//!   gather-write history. Theorem 4: any lease-based algorithm provides
//!   it. [`causal`] rebuilds the gather-write logs (`gwlog`, `gwlog'`)
//!   from the mechanism's ghost logs and validates:
//!
//!   1. **value compatibility** — each combine's returned value equals
//!      `f` over the writes its gather counterpart reports (`I1` of
//!      Lemma 5.5),
//!   2. **write-log coherence** — all nodes agree on the argument of
//!      every write `(node, index)`,
//!   3. **serialization** — each node's `gwlog'` contains every write of
//!      the execution exactly once plus all of the node's gathers, and
//!   4. **causal order** — the serialization respects `⤳` (program
//!      order plus write→gather edges, transitively; Lemma 5.10).
//!
//! [`sequential`] additionally provides a *sequential-consistency*
//! checker (a notion strictly between the paper's two): lease-based
//! algorithms do **not** guarantee it concurrently, and the test suite
//! constructs the separating execution — the reason Section 5 targets
//! causal consistency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod sequential;
pub mod sequential_brute;
pub mod strict;

pub use causal::{check_causal, CausalReport, CausalViolation};
pub use sequential::{check_sequentially_consistent, own_histories, OwnOp};
pub use strict::{check_strict_sequential, StrictViolation};
