//! Sequential-consistency checker — and why the paper doesn't promise it.
//!
//! *Sequential consistency* for the aggregation problem: a single total
//! order of **all** requests, respecting each node's program order, in
//! which every combine returns `f` over the most recent writes. It sits
//! strictly between the paper's two notions: strict consistency implies
//! it, and it implies causal consistency.
//!
//! Lease-based algorithms provide it in sequential executions (where
//! they are even strictly consistent, Lemma 3.12) but **not** in
//! concurrent ones: two readers on opposite sides of a tree can observe
//! two independent writes in opposite orders — each view is causally
//! fine, but no single total order explains both. The test suite
//! constructs such an execution deterministically, which is precisely
//! why Section 5 targets causal consistency.
//!
//! The checker does a memoized backtracking search over interleavings of
//! the per-node request sequences. The key observation keeping the state
//! small: a node's local value is determined by how many of *its own*
//! writes have been placed, so the search state is just the vector of
//! per-node positions.

use oat_core::agg::AggOp;
use oat_core::ghost::GhostReq;
use std::collections::HashSet;

/// One request of a node's own program, with the data the checker needs.
#[derive(Clone, Debug, PartialEq)]
pub enum OwnOp<V> {
    /// A write of this value at this node.
    Write(V),
    /// A combine at this node that returned this value.
    Combine(V),
}

/// Extracts each node's own request sequence (program order) from the
/// ghost logs: node `u`'s own writes and combines, in index order.
pub fn own_histories<V: Clone>(logs: &[Vec<GhostReq<V>>]) -> Vec<Vec<OwnOp<V>>> {
    logs.iter()
        .enumerate()
        .map(|(u, log)| {
            let mut ops: Vec<(u32, OwnOp<V>)> = Vec::new();
            for e in log {
                match e {
                    GhostReq::Write(w) if w.node.idx() == u => {
                        ops.push((w.index, OwnOp::Write(w.arg.clone())));
                    }
                    GhostReq::Combine {
                        node,
                        index,
                        retval,
                    } if node.idx() == u => {
                        ops.push((*index, OwnOp::Combine(retval.clone())));
                    }
                    _ => {}
                }
            }
            ops.sort_by_key(|(i, _)| *i);
            ops.into_iter().map(|(_, op)| op).collect()
        })
        .collect()
}

/// Searches for a witness total order: a sequence of `(node, op index)`
/// pairs covering every request, respecting program order, in which each
/// combine's recorded value equals `f` over the then-current local
/// values. `None` when no such order exists (the history is **not**
/// sequentially consistent).
pub fn check_sequentially_consistent<A: AggOp>(
    op: &A,
    histories: &[Vec<OwnOp<A::Value>>],
) -> Option<Vec<(usize, usize)>> {
    let n = histories.len();
    let total: usize = histories.iter().map(Vec::len).sum();
    let mut pos = vec![0u32; n];
    let mut vals: Vec<A::Value> = (0..n).map(|_| op.identity()).collect();
    let mut witness: Vec<(usize, usize)> = Vec::with_capacity(total);
    let mut dead: HashSet<Vec<u32>> = HashSet::new();

    fn dfs<A: AggOp>(
        op: &A,
        histories: &[Vec<OwnOp<A::Value>>],
        pos: &mut Vec<u32>,
        vals: &mut Vec<A::Value>,
        witness: &mut Vec<(usize, usize)>,
        dead: &mut HashSet<Vec<u32>>,
        remaining: usize,
    ) -> bool {
        if remaining == 0 {
            return true;
        }
        if dead.contains(pos) {
            return false;
        }
        for u in 0..histories.len() {
            let p = pos[u] as usize;
            let Some(next) = histories[u].get(p) else {
                continue;
            };
            match next {
                OwnOp::Write(v) => {
                    let prev = std::mem::replace(&mut vals[u], v.clone());
                    pos[u] += 1;
                    witness.push((u, p));
                    if dfs(op, histories, pos, vals, witness, dead, remaining - 1) {
                        return true;
                    }
                    witness.pop();
                    pos[u] -= 1;
                    vals[u] = prev;
                }
                OwnOp::Combine(ret) => {
                    if op.fold(vals.iter()) == *ret {
                        pos[u] += 1;
                        witness.push((u, p));
                        if dfs(op, histories, pos, vals, witness, dead, remaining - 1) {
                            return true;
                        }
                        witness.pop();
                        pos[u] -= 1;
                    }
                }
            }
        }
        dead.insert(pos.clone());
        false
    }

    if dfs(
        op,
        histories,
        &mut pos,
        &mut vals,
        &mut witness,
        &mut dead,
        total,
    ) {
        Some(witness)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;

    #[test]
    fn trivially_consistent_history() {
        // n0 writes 5, n1 reads 5.
        let histories = vec![vec![OwnOp::Write(5i64)], vec![OwnOp::Combine(5)]];
        let w = check_sequentially_consistent(&SumI64, &histories).expect("SC");
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], (0, 0), "write must precede the read of 5");
    }

    #[test]
    fn read_of_zero_orders_before_write() {
        let histories = vec![vec![OwnOp::Write(5i64)], vec![OwnOp::Combine(0)]];
        let w = check_sequentially_consistent(&SumI64, &histories).expect("SC");
        assert_eq!(w[0], (1, 0), "the 0-read precedes the write");
    }

    #[test]
    fn opposite_observations_are_not_sc() {
        // The IRIW pattern: writer A (1), writer B (2); reader C saw only
        // A (combine = 1), reader D saw only B (combine = 2). Causally
        // fine, sequentially impossible.
        let histories = vec![
            vec![OwnOp::Write(1i64)],
            vec![OwnOp::Write(2)],
            vec![OwnOp::Combine(1)],
            vec![OwnOp::Combine(2)],
        ];
        assert!(check_sequentially_consistent(&SumI64, &histories).is_none());
    }

    #[test]
    fn program_order_is_respected() {
        // n0: write 1 then write 3; n1 read 3 then read 1 — the second
        // read would need the first write *after* the second. Not SC.
        let histories = vec![
            vec![OwnOp::Write(1i64), OwnOp::Write(3)],
            vec![OwnOp::Combine(3), OwnOp::Combine(1)],
        ];
        assert!(check_sequentially_consistent(&SumI64, &histories).is_none());
        // The reverse reader is fine.
        let histories = vec![
            vec![OwnOp::Write(1i64), OwnOp::Write(3)],
            vec![OwnOp::Combine(1), OwnOp::Combine(3)],
        ];
        assert!(check_sequentially_consistent(&SumI64, &histories).is_some());
    }

    #[test]
    fn witness_replays_to_the_recorded_values() {
        let histories = vec![
            vec![OwnOp::Write(2i64), OwnOp::Combine(7)],
            vec![OwnOp::Write(5)],
            vec![OwnOp::Combine(2)],
        ];
        let w = check_sequentially_consistent(&SumI64, &histories).expect("SC");
        // Replay the witness and re-check every combine.
        let mut vals = [0i64; 3];
        for (u, i) in w {
            match &histories[u][i] {
                OwnOp::Write(v) => vals[u] = *v,
                OwnOp::Combine(ret) => {
                    assert_eq!(vals.iter().sum::<i64>(), *ret);
                }
            }
        }
    }

    #[test]
    fn empty_and_single_histories() {
        let histories: Vec<Vec<OwnOp<i64>>> = vec![vec![], vec![]];
        assert_eq!(
            check_sequentially_consistent(&SumI64, &histories),
            Some(vec![])
        );
    }
}
