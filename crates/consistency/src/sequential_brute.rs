//! Brute-force oracle for the sequential-consistency checker (test
//! support).
//!
//! Enumerates *every* interleaving of the per-node histories by
//! unmemoized recursion and reports whether any satisfies all combines.
//! Exponential — only usable on tiny instances — but a completely
//! independent implementation, so agreement with the memoized
//! [`crate::sequential::check_sequentially_consistent`] on random small
//! histories is strong evidence both are right.

use crate::sequential::OwnOp;
use oat_core::agg::AggOp;

/// Exhaustive check by plain enumeration (no memoization, no pruning
/// order tricks). Returns whether any witness order exists.
pub fn brute_force_sc<A: AggOp>(op: &A, histories: &[Vec<OwnOp<A::Value>>]) -> bool {
    fn rec<A: AggOp>(
        op: &A,
        histories: &[Vec<OwnOp<A::Value>>],
        pos: &mut Vec<usize>,
        vals: &mut Vec<A::Value>,
        remaining: usize,
    ) -> bool {
        if remaining == 0 {
            return true;
        }
        for u in 0..histories.len() {
            let Some(next) = histories[u].get(pos[u]) else {
                continue;
            };
            match next {
                OwnOp::Write(v) => {
                    let prev = std::mem::replace(&mut vals[u], v.clone());
                    pos[u] += 1;
                    if rec(op, histories, pos, vals, remaining - 1) {
                        return true;
                    }
                    pos[u] -= 1;
                    vals[u] = prev;
                }
                OwnOp::Combine(ret) => {
                    if op.fold(vals.iter()) == *ret {
                        pos[u] += 1;
                        if rec(op, histories, pos, vals, remaining - 1) {
                            return true;
                        }
                        pos[u] -= 1;
                    }
                }
            }
        }
        false
    }
    let n = histories.len();
    let total: usize = histories.iter().map(Vec::len).sum();
    let mut pos = vec![0usize; n];
    let mut vals: Vec<A::Value> = (0..n).map(|_| op.identity()).collect();
    rec(op, histories, &mut pos, &mut vals, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::check_sequentially_consistent;
    use oat_core::agg::SumI64;
    use proptest::prelude::*;

    fn tiny_histories() -> impl Strategy<Value = Vec<Vec<OwnOp<i64>>>> {
        // 2-3 nodes, up to 3 ops each, small value/result domains so
        // both satisfiable and unsatisfiable instances occur often.
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    (0i64..4).prop_map(OwnOp::Write),
                    (0i64..8).prop_map(OwnOp::Combine),
                ],
                0..=3,
            ),
            2..=3,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn memoized_checker_agrees_with_brute_force(h in tiny_histories()) {
            let fast = check_sequentially_consistent(&SumI64, &h).is_some();
            let slow = brute_force_sc(&SumI64, &h);
            prop_assert_eq!(fast, slow, "{:?}", h);
        }
    }
}
