//! Strict-consistency oracle for sequential executions.
//!
//! Section 2: an algorithm is strictly consistent on `σ` when every
//! combine `q` returns `f(A(σ,q))` — the operator folded over the most
//! recent write at each node preceding `q` (nodes never written
//! contribute the identity, i.e. their initial local value).
//!
//! Lemma 3.12 proves every lease-based algorithm is *nice* (strictly
//! consistent in sequential executions); this module checks that claim on
//! real runs.

use oat_core::agg::AggOp;
use oat_core::request::{ReqOp, Request};
use oat_core::tree::Tree;

/// A combine that returned the wrong value.
#[derive(Clone, Debug, PartialEq)]
pub struct StrictViolation<V> {
    /// Index of the offending combine in the request sequence.
    pub request_index: usize,
    /// Value the algorithm returned.
    pub got: V,
    /// Value strict consistency requires.
    pub expected: V,
}

/// Replays `seq` against an oracle of per-node last writes and validates
/// every `(request index, value)` pair in `combines` (as produced by
/// `oat_sim::run_sequential`).
///
/// Returns all violations (empty = strictly consistent).
///
/// ```
/// use oat_core::{agg::SumI64, request::Request, tree::{NodeId, Tree}};
/// use oat_consistency::check_strict_sequential;
///
/// let tree = Tree::pair();
/// let seq = vec![Request::write(NodeId(0), 5), Request::combine(NodeId(1))];
/// // A run that returned 5 is strict; one that returned 4 is not.
/// assert!(check_strict_sequential(&SumI64, &tree, &seq, &[(1, 5)]).is_empty());
/// assert_eq!(check_strict_sequential(&SumI64, &tree, &seq, &[(1, 4)]).len(), 1);
/// ```
pub fn check_strict_sequential<A: AggOp>(
    op: &A,
    tree: &Tree,
    seq: &[Request<A::Value>],
    combines: &[(usize, A::Value)],
) -> Vec<StrictViolation<A::Value>> {
    let mut vals: Vec<A::Value> = (0..tree.len()).map(|_| op.identity()).collect();
    let mut expected_at = Vec::with_capacity(combines.len());
    for (i, q) in seq.iter().enumerate() {
        match &q.op {
            ReqOp::Write(arg) => vals[q.node.idx()] = arg.clone(),
            ReqOp::Combine => {
                expected_at.push((i, op.fold(vals.iter())));
            }
        }
    }
    let mut violations = Vec::new();
    assert_eq!(
        expected_at.len(),
        combines.len(),
        "one recorded result per combine request"
    );
    for ((ei, expected), (gi, got)) in expected_at.iter().zip(combines) {
        assert_eq!(ei, gi, "combine results must align with combine requests");
        if got != expected {
            violations.push(StrictViolation {
                request_index: *gi,
                got: got.clone(),
                expected: expected.clone(),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;
    use oat_core::tree::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn accepts_correct_results() {
        let tree = Tree::path(3);
        let seq = vec![
            Request::write(n(0), 5),
            Request::combine(n(2)),
            Request::write(n(1), 3),
            Request::combine(n(0)),
        ];
        let combines = vec![(1usize, 5i64), (3, 8)];
        assert!(check_strict_sequential(&SumI64, &tree, &seq, &combines).is_empty());
    }

    #[test]
    fn detects_stale_read() {
        let tree = Tree::path(3);
        let seq = vec![
            Request::write(n(0), 5),
            Request::combine(n(2)),
            Request::write(n(0), 7),
            Request::combine(n(2)),
        ];
        // Second combine returns the stale 5.
        let combines = vec![(1usize, 5i64), (3, 5)];
        let v = check_strict_sequential(&SumI64, &tree, &seq, &combines);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].request_index, 3);
        assert_eq!(v[0].expected, 7);
        assert_eq!(v[0].got, 5);
    }

    #[test]
    fn overwrites_supersede() {
        let tree = Tree::pair();
        let seq = vec![
            Request::write(n(0), 1),
            Request::write(n(0), 10),
            Request::combine(n(1)),
        ];
        let combines = vec![(2usize, 10i64)];
        assert!(check_strict_sequential(&SumI64, &tree, &seq, &combines).is_empty());
    }
}
