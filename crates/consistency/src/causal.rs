//! Causal-consistency checker for concurrent executions (Section 5).
//!
//! Inputs are the per-node ghost logs maintained by the mechanism
//! (Section 5.2): each node's `log` interleaves its own completed
//! combines (with return values) and every write it has learned of, in
//! learning order. The checker rebuilds the paper's gather-write view and
//! validates the definition of causal consistency:
//!
//! * each combine is *compatible* with a gather returning
//!   `recentwrites(u.log, q)` — its value must equal `f` over exactly
//!   those writes (`I1` of Lemma 5.5),
//! * all nodes agree on each write `(node, index)` (write coherence),
//! * for each node `u`, the serialization `u.gwlog'` — `u`'s gather-write
//!   log followed by the writes it never learned of (in causal
//!   topological order) — contains `pruned(A, u)` exactly and respects
//!   the causal order `⤳` (Lemma 5.10 / Theorem 4).
//!
//! The causal order is: `q1 ⤳ q2` if they share a node and
//! `q1.index < q2.index` (program order), or `q1` is a write returned in
//! gather `q2`'s `retval`, closed transitively. Reachability is computed
//! once over the global history with dense bitsets, so the per-node
//! pairwise check is `O(|S|²)` with O(1) ancestor queries.

use oat_core::agg::AggOp;
use oat_core::ghost::GhostReq;
use oat_core::tree::NodeId;
use std::collections::HashMap;

/// Identifier of a request in the global history: `(node, index)`.
pub type ReqId = (u32, u32);

/// A detected violation of causal consistency (or of the stronger ghost
/// invariants the proof relies on).
#[derive(Clone, Debug, PartialEq)]
pub enum CausalViolation<V> {
    /// Two logs disagree on the argument of the same write.
    WriteArgMismatch {
        /// The write in question.
        write: ReqId,
        /// One observed argument.
        a: V,
        /// A different observed argument.
        b: V,
    },
    /// A combine's value is not `f` over its gather's writes.
    ValueMismatch {
        /// Node and index of the combine.
        combine: ReqId,
        /// Returned value.
        got: V,
        /// Value implied by `recentwrites` of the node's log.
        expected: V,
    },
    /// A `(node, index)` pair appears twice in one node's history.
    DuplicateRequest {
        /// Observer whose log is malformed.
        observer: NodeId,
        /// The duplicated id.
        id: ReqId,
    },
    /// The causal order contains a cycle (impossible for a correct
    /// mechanism; would make serialization meaningless).
    CausalCycle,
    /// A serialization places `second` before `first` although
    /// `first ⤳ second`.
    OrderViolation {
        /// Observer whose serialization fails.
        observer: NodeId,
        /// The causally earlier request.
        first: ReqId,
        /// The causally later request, found earlier in the log.
        second: ReqId,
    },
}

/// Summary of a successful check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CausalReport {
    /// Distinct writes in the execution.
    pub writes: usize,
    /// Gathers (completed combines) across all nodes.
    pub gathers: usize,
    /// Direct causal edges (program order + write→gather).
    pub causal_edges: usize,
    /// Ordered pairs validated across all serializations.
    pub checked_pairs: u64,
}

/// Checks causal consistency of an execution from its per-node ghost
/// logs (`logs[i]` is node `i`'s log).
pub fn check_causal<A: AggOp>(
    op: &A,
    logs: &[Vec<GhostReq<A::Value>>],
) -> Result<CausalReport, CausalViolation<A::Value>> {
    let n = logs.len();

    // ---- 1. global write set + coherence ----
    let mut write_args: HashMap<ReqId, A::Value> = HashMap::new();
    for log in logs {
        for entry in log {
            if let GhostReq::Write(w) = entry {
                let id = (w.node.0, w.index);
                match write_args.get(&id) {
                    None => {
                        write_args.insert(id, w.arg.clone());
                    }
                    Some(existing) if *existing == w.arg => {}
                    Some(existing) => {
                        return Err(CausalViolation::WriteArgMismatch {
                            write: id,
                            a: existing.clone(),
                            b: w.arg.clone(),
                        });
                    }
                }
            }
        }
    }

    // ---- 2. per-node gather construction + value compatibility ----
    // gathers[u] = (index, retval recentwrites vector) in log order.
    struct Gather {
        node: u32,
        index: u32,
        recent: Vec<i64>,
    }
    let mut gathers: Vec<Gather> = Vec::new();
    for (u, log) in logs.iter().enumerate() {
        let mut last_seen = vec![-1i64; n];
        let mut seen_ids: HashMap<ReqId, ()> = HashMap::new();
        for entry in log {
            match entry {
                GhostReq::Write(w) => {
                    let id = (w.node.0, w.index);
                    if seen_ids.insert(id, ()).is_some() {
                        return Err(CausalViolation::DuplicateRequest {
                            observer: NodeId(u as u32),
                            id,
                        });
                    }
                    last_seen[w.node.idx()] = w.index as i64;
                }
                GhostReq::Combine {
                    node,
                    index,
                    retval,
                } => {
                    let id = (node.0, *index);
                    if seen_ids.insert(id, ()).is_some() {
                        return Err(CausalViolation::DuplicateRequest {
                            observer: NodeId(u as u32),
                            id,
                        });
                    }
                    // I1: the combine's value equals f over the most
                    // recent writes per node in the log prefix.
                    let mut expected = op.identity();
                    for (x, &ix) in last_seen.iter().enumerate() {
                        if ix >= 0 {
                            let arg = write_args
                                .get(&(x as u32, ix as u32))
                                .expect("recentwrites references a known write");
                            expected = op.combine(&expected, arg);
                        }
                    }
                    if expected != *retval {
                        return Err(CausalViolation::ValueMismatch {
                            combine: id,
                            got: retval.clone(),
                            expected,
                        });
                    }
                    gathers.push(Gather {
                        node: node.0,
                        index: *index,
                        recent: last_seen.clone(),
                    });
                }
            }
        }
    }

    // ---- 3. global causal DAG + reachability ----
    // Dense request ids: writes then gathers.
    let mut dense: HashMap<ReqId, usize> = HashMap::new();
    let mut rid: Vec<ReqId> = Vec::new();
    for id in write_args.keys() {
        dense.insert(*id, rid.len());
        rid.push(*id);
    }
    for g in &gathers {
        let id = (g.node, g.index);
        if dense.insert(id, rid.len()).is_some() {
            return Err(CausalViolation::DuplicateRequest {
                observer: NodeId(g.node),
                id,
            });
        }
        rid.push(id);
    }
    let r = rid.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); r];
    let mut edge_count = 0usize;
    // Program order: per node, sort request ids by index and chain them.
    let mut per_node: Vec<Vec<(u32, usize)>> = vec![Vec::new(); n];
    for (i, &(node, index)) in rid.iter().enumerate() {
        per_node[node as usize].push((index, i));
    }
    for list in &mut per_node {
        list.sort_unstable();
        for w in list.windows(2) {
            adj[w[0].1].push(w[1].1);
            edge_count += 1;
        }
    }
    // Write → gather edges.
    for g in &gathers {
        let gi = dense[&(g.node, g.index)];
        for (x, &ix) in g.recent.iter().enumerate() {
            if ix >= 0 {
                let wi = dense[&(x as u32, ix as u32)];
                adj[wi].push(gi);
                edge_count += 1;
            }
        }
    }
    // Topological order (Kahn) + ancestor bitsets.
    let mut indeg = vec![0usize; r];
    for targets in &adj {
        for &t in targets {
            indeg[t] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..r).filter(|&i| indeg[i] == 0).collect();
    let words = r.div_ceil(64);
    let mut anc: Vec<Vec<u64>> = vec![vec![0u64; words]; r];
    let mut topo_seen = 0usize;
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        topo_seen += 1;
        for &t in &adj[v].clone() {
            // ancestors(t) |= ancestors(v) ∪ {v}
            let (av, at) = if v < t {
                let (lo, hi) = anc.split_at_mut(t);
                (&lo[v], &mut hi[0])
            } else {
                let (lo, hi) = anc.split_at_mut(v);
                (&hi[0], &mut lo[t])
            };
            for w in 0..words {
                at[w] |= av[w];
            }
            at[v / 64] |= 1u64 << (v % 64);
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push(t);
            }
        }
    }
    if topo_seen != r {
        return Err(CausalViolation::CausalCycle);
    }
    let reaches = |a: usize, b: usize| -> bool { anc[b][a / 64] >> (a % 64) & 1 == 1 };

    // ---- 4. per-node serializations ----
    // Missing writes appended in causal topological order (queue order
    // restricted to writes works: `queue` is a topological order of the
    // whole DAG).
    let topo_order = queue;
    let mut checked_pairs = 0u64;
    for (u, log) in logs.iter().enumerate() {
        // Serialization S: gwlog (log order) then missing writes.
        let mut s: Vec<usize> = Vec::with_capacity(r);
        let mut present = vec![false; r];
        for entry in log {
            let id = match entry {
                GhostReq::Write(w) => (w.node.0, w.index),
                GhostReq::Combine { node, index, .. } => (node.0, *index),
            };
            let di = dense[&id];
            s.push(di);
            present[di] = true;
        }
        for &v in &topo_order {
            let (node, _) = rid[v];
            let is_write = write_args.contains_key(&rid[v]);
            // pruned(A, u): all writes + u's own gathers.
            if !present[v] && (is_write || node as usize == u) {
                s.push(v);
                present[v] = true;
            }
        }
        // Respect ⤳: no later element may causally precede an earlier
        // one.
        for i in 0..s.len() {
            for j in i + 1..s.len() {
                checked_pairs += 1;
                if reaches(s[j], s[i]) {
                    return Err(CausalViolation::OrderViolation {
                        observer: NodeId(u as u32),
                        first: rid[s[j]],
                        second: rid[s[i]],
                    });
                }
            }
        }
    }

    Ok(CausalReport {
        writes: write_args.len(),
        gathers: gathers.len(),
        causal_edges: edge_count,
        checked_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;
    use oat_core::ghost::{GhostReq, WriteRec};

    fn w(node: u32, index: u32, arg: i64) -> GhostReq<i64> {
        GhostReq::Write(WriteRec {
            node: NodeId(node),
            index,
            arg,
        })
    }

    fn c(node: u32, index: u32, retval: i64) -> GhostReq<i64> {
        GhostReq::Combine {
            node: NodeId(node),
            index,
            retval,
        }
    }

    #[test]
    fn empty_history_is_causal() {
        let logs: Vec<Vec<GhostReq<i64>>> = vec![vec![], vec![]];
        let rep = check_causal(&SumI64, &logs).unwrap();
        assert_eq!(rep.writes, 0);
        assert_eq!(rep.gathers, 0);
    }

    #[test]
    fn simple_consistent_history() {
        // Node 0 writes 5; node 1 sees it and combines to 5.
        let logs = vec![vec![w(0, 0, 5)], vec![w(0, 0, 5), c(1, 0, 5)]];
        let rep = check_causal(&SumI64, &logs).unwrap();
        assert_eq!(rep.writes, 1);
        assert_eq!(rep.gathers, 1);
    }

    #[test]
    fn combine_that_misses_unseen_writes_is_still_causal() {
        // Node 1 combines before learning node 0's write: fine causally.
        let logs = vec![vec![w(0, 0, 5)], vec![c(1, 0, 0), w(0, 0, 5)]];
        assert!(check_causal(&SumI64, &logs).is_ok());
    }

    #[test]
    fn detects_value_mismatch() {
        // Node 1's combine claims 7 but its log says the sum is 5.
        let logs = vec![vec![w(0, 0, 5)], vec![w(0, 0, 5), c(1, 0, 7)]];
        let err = check_causal(&SumI64, &logs).unwrap_err();
        assert!(matches!(err, CausalViolation::ValueMismatch { .. }));
    }

    #[test]
    fn detects_write_arg_mismatch() {
        let logs = vec![vec![w(0, 0, 5)], vec![w(0, 0, 6)]];
        let err = check_causal(&SumI64, &logs).unwrap_err();
        assert!(matches!(err, CausalViolation::WriteArgMismatch { .. }));
    }

    #[test]
    fn detects_program_order_violation() {
        // Node 1's log holds node 0's writes out of index order: the
        // serialization would put (0,1) before (0,0).
        let logs = vec![vec![w(0, 0, 1), w(0, 1, 2)], vec![w(0, 1, 2), w(0, 0, 1)]];
        let err = check_causal(&SumI64, &logs).unwrap_err();
        assert!(
            matches!(err, CausalViolation::OrderViolation { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn detects_causality_through_gathers() {
        // Node 1 gathers node 0's write (so write(0,0) ⤳ gather(1,0)),
        // then writes. Node 2 sees node 1's write but places node 0's
        // write after it — violating write(0,0) ⤳ write(1,1).
        let logs = vec![
            vec![w(0, 0, 5)],
            vec![w(0, 0, 5), c(1, 0, 5), w(1, 1, 3)],
            vec![w(1, 1, 3), w(0, 0, 5)],
        ];
        let err = check_causal(&SumI64, &logs).unwrap_err();
        assert!(
            matches!(err, CausalViolation::OrderViolation { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn missing_writes_are_appended_consistently() {
        // Node 2 never saw anything; its serialization appends all
        // writes in topological order — must pass.
        let logs = vec![
            vec![w(0, 0, 5)],
            vec![w(0, 0, 5), c(1, 0, 5), w(1, 1, 3)],
            vec![],
        ];
        let rep = check_causal(&SumI64, &logs).unwrap();
        assert_eq!(rep.writes, 2);
    }

    #[test]
    fn duplicate_request_detected() {
        let logs = vec![vec![w(0, 0, 5), w(0, 0, 5)]];
        let err = check_causal(&SumI64, &logs).unwrap_err();
        assert!(matches!(err, CausalViolation::DuplicateRequest { .. }));
    }
}
