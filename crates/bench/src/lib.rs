//! # oat-bench — experiment harness
//!
//! One module per paper artefact (figure, table, theorem, claim); each
//! regenerates its numbers from the real implementation and returns a
//! [`table::Table`] the `tables` binary prints. EXPERIMENTS.md records
//! paper-vs-measured from exactly these outputs.
//!
//! | experiment | paper artefact |
//! |------------|----------------|
//! | [`experiments::fig2`] | Figure 2 cost table |
//! | [`experiments::fig3`] | Figure 3 / Corollary 4.1 ((1,2) behaviour) |
//! | [`experiments::fig4`] | Figure 4 product state machine |
//! | [`experiments::fig5`] | Figure 5 LP (c = 5/2, Φ) |
//! | [`experiments::thm1`] | Theorem 1 competitive sweep |
//! | [`experiments::thm2`] | Theorem 2 vs nice lower bound |
//! | [`experiments::thm3`] | Theorem 3 (a,b) adversary grid |
//! | [`experiments::strict`] | Lemma 3.12 strict consistency |
//! | [`experiments::causal`] | Theorem 4 causal consistency |
//! | [`experiments::motivation`] | §1 static-vs-adaptive sweep |
//! | [`experiments::ablation`] | break-threshold ablation |
//! | [`experiments::scale`] | messages/request vs tree size |
//! | [`experiments::potential`] | potential-function audit |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;
