//! Minimal aligned-text tables for experiment output.

use std::fmt;

/// A printable experiment result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Title line (experiment id + paper artefact).
    pub title: String,
    /// Free-text notes printed under the title.
    pub notes: Vec<String>,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            notes: Vec::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Adds a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        for n in &self.notes {
            writeln!(f, "   {n}")?;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (w, c) in widths.iter().zip(cells) {
                write!(f, "{c:>w$}  ", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        writeln!(
            f,
            "  {}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

impl Table {
    /// Renders the table as CSV (notes become `#` comment lines). Cells
    /// containing commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = format!("# {}\n", self.title);
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an optional ratio.
pub fn opt_f3(x: Option<f64>) -> String {
    x.map(f3).unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
