//! Regenerates every figure/table of the paper from the implementation.
//!
//! ```text
//! cargo run -p oat-bench --release --bin tables            # everything
//! cargo run -p oat-bench --release --bin tables -- fig5    # one experiment
//! cargo run -p oat-bench --release --bin tables -- --list  # names
//! cargo run -p oat-bench --release --bin tables -- --csv   # CSV output
//! ```

use oat_bench::experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    args.retain(|a| a != "--csv");
    let all = experiments::all();

    if args.iter().any(|a| a == "--list") {
        for (name, _) in &all {
            println!("{name}");
        }
        return;
    }

    let selected: Vec<&(&str, oat_bench::experiments::ExperimentFn)> = if args.is_empty() {
        all.iter().collect()
    } else {
        let picked: Vec<_> = all
            .iter()
            .filter(|(name, _)| args.iter().any(|a| a == name))
            .collect();
        if picked.is_empty() {
            eprintln!("unknown experiment(s) {args:?}; use --list");
            std::process::exit(2);
        }
        picked
    };

    if !csv {
        println!("Online Aggregation over Trees (IPPS 2007) — reproduced figures and tables\n");
    }
    for (name, run) in selected {
        let start = std::time::Instant::now();
        for table in run() {
            if csv {
                println!("{}", table.to_csv());
            } else {
                println!("{table}");
            }
        }
        if !csv {
            println!("[{name} regenerated in {:.2?}]\n", start.elapsed());
        }
    }
}
