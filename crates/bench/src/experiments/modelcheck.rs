//! **E16 — exhaustive model checking**: Theorem 4 and the structural
//! lemmas over *every* interleaving of small concurrent executions.
//!
//! The sampled experiments (E8/E9/E15) test thousands of schedules; this
//! one enumerates the complete state space of small instances — every
//! possible interleaving of request initiations and message deliveries —
//! and checks causal consistency in every terminal state, the structural
//! invariants in every quiescent state, and that all combines complete
//! (no deadlock, no lost requests) on every path.

use oat_core::agg::SumI64;
use oat_core::policy::ab::AbSpec;
use oat_core::policy::rww::RwwSpec;
use oat_core::request::Request;
use oat_core::tree::{NodeId, Tree};
use oat_modelcheck::{check_all_interleavings, Limits};

use crate::table::Table;

fn n(i: u32) -> NodeId {
    NodeId(i)
}

/// The checked instances: (name, tree, script).
pub fn instances() -> Vec<(String, Tree, Vec<Request<i64>>)> {
    vec![
        (
            "pair R W R W".into(),
            Tree::pair(),
            vec![
                Request::combine(n(1)),
                Request::write(n(0), 5),
                Request::combine(n(1)),
                Request::write(n(0), 7),
            ],
        ),
        (
            "pair racing combines".into(),
            Tree::pair(),
            vec![
                Request::combine(n(0)),
                Request::combine(n(1)),
                Request::write(n(0), 1),
                Request::write(n(1), 2),
            ],
        ),
        (
            "path3 cross traffic".into(),
            Tree::path(3),
            vec![
                Request::combine(n(0)),
                Request::write(n(2), 3),
                Request::combine(n(2)),
                Request::write(n(0), 4),
            ],
        ),
        (
            "path3 coalescing".into(),
            Tree::path(3),
            vec![
                Request::combine(n(0)),
                Request::combine(n(0)),
                Request::combine(n(0)),
                Request::write(n(2), 9),
            ],
        ),
        (
            "pair long mixed".into(),
            Tree::pair(),
            vec![
                Request::combine(n(1)),
                Request::write(n(0), 1),
                Request::combine(n(0)),
                Request::write(n(1), 2),
                Request::combine(n(1)),
                Request::write(n(0), 3),
                Request::write(n(0), 4),
                Request::combine(n(1)),
            ],
        ),
        (
            "path3 heavy overlap".into(),
            Tree::path(3),
            vec![
                Request::combine(n(0)),
                Request::combine(n(2)),
                Request::write(n(1), 1),
                Request::combine(n(1)),
                Request::write(n(0), 2),
                Request::write(n(2), 3),
            ],
        ),
        (
            "star4 fan".into(),
            Tree::star(4),
            vec![
                Request::write(n(1), 1),
                Request::combine(n(2)),
                Request::write(n(3), 2),
                Request::combine(n(1)),
            ],
        ),
    ]
}

/// Runs E16.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E16 / model checking — every interleaving of small concurrent executions",
        &[
            "instance",
            "policy",
            "states",
            "transitions",
            "terminals",
            "max in-flight",
            "verdict",
        ],
    );
    t.note("checked in every state: invariants (quiescent), completion + causal consistency (terminal)");
    for (name, tree, script) in instances() {
        for (pname, result) in [
            (
                "RWW",
                check_all_interleavings(&tree, SumI64, &RwwSpec, &script, Limits::default()),
            ),
            (
                "(1,3)",
                check_all_interleavings(
                    &tree,
                    SumI64,
                    &AbSpec::new(1, 3),
                    &script,
                    Limits::default(),
                ),
            ),
        ] {
            match result {
                Ok(rep) => t.row(vec![
                    name.clone(),
                    pname.into(),
                    rep.distinct_states.to_string(),
                    rep.transitions.to_string(),
                    rep.terminal_states.to_string(),
                    rep.max_in_flight.to_string(),
                    "all clean".into(),
                ]),
                Err(e) => t.row(vec![
                    name.clone(),
                    pname.into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("FAILED: {e}"),
                ]),
            }
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_instances_verify_cleanly() {
        for table in super::run() {
            for row in &table.rows {
                assert_eq!(row[6], "all clean", "{row:?}");
            }
        }
    }
}
