//! **E4 — Figure 5**: the linear program behind Theorem 1.
//!
//! Builds the LP from the enumerated transition system, solves it with
//! the in-repo simplex, and compares against the paper's printed optimum:
//! `c = 5/2`, `Φ = (0, 2, 3, 5/2, 2, 1/2)`.

use oat_lp::certificate::{max_ratio_cycle, simple_cycles};
use oat_lp::figure5::{
    build_figure5_lp, is_feasible, solve_figure5, PAPER_C, PAPER_PHI, PAPER_ROWS,
};
use oat_lp::state_machine::ProductState;

use crate::table::{f3, Table};

/// Runs E4.
pub fn run() -> Vec<Table> {
    let lp = build_figure5_lp();
    let sol = solve_figure5().expect("Figure-5 LP solvable");

    let mut t = Table::new(
        "E4 / Figure 5 — LP optimum (solved by the in-repo simplex)",
        &["quantity", "paper", "solved", "ok"],
    );
    t.note(format!(
        "LP: {} rows over 7 non-negative variables (paper prints {} rows; extras are 0 ≤ 0 noops)",
        lp.a.len(),
        PAPER_ROWS.len()
    ));
    let ok = |a: f64, b: f64| {
        if (a - b).abs() < 1e-6 {
            "yes".to_string()
        } else {
            "MISMATCH".to_string()
        }
    };
    t.row(vec![
        "c (competitive ratio)".into(),
        f3(PAPER_C),
        f3(sol.c),
        ok(PAPER_C, sol.c),
    ]);
    for (i, s) in ProductState::all().iter().enumerate() {
        // The optimal potential need not be unique; we report both and
        // mark agreement where it happens, feasibility always.
        t.row(vec![
            format!("Φ{}", s.label()),
            f3(PAPER_PHI[i]),
            f3(sol.phi[i]),
            if (PAPER_PHI[i] - sol.phi[i]).abs() < 1e-6 {
                "yes".into()
            } else {
                "alt-optimum".into()
            },
        ]);
    }
    t.row(vec![
        "paper Φ feasible at c=5/2".into(),
        "yes".into(),
        if is_feasible(PAPER_C, &PAPER_PHI, 1e-9) {
            "yes".into()
        } else {
            "NO".into()
        },
        "-".into(),
    ]);
    t.row(vec![
        "paper Φ feasible at c=2.45".into(),
        "no".into(),
        if is_feasible(2.45, &PAPER_PHI, 1e-9) {
            "YES?!".into()
        } else {
            "no".into()
        },
        "-".into(),
    ]);
    // Exact integer certificate: c* = max cycle ratio of the transition
    // graph (Φ telescopes around cycles), computed without floats.
    let best = max_ratio_cycle();
    t.row(vec![
        format!("exact cycle certificate ({} cycles)", simple_cycles().len()),
        "5/2".into(),
        format!("{}/{}", best.rww_sum, best.opt_sum),
        if best.eq(5, 2) {
            "yes".into()
        } else {
            "MISMATCH".into()
        },
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn solved_c_matches_paper() {
        let tables = super::run();
        let c_row = &tables[0].rows[0];
        assert_eq!(c_row[3], "yes", "{c_row:?}");
    }
}
