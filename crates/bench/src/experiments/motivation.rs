//! **E10 — Section 1 motivation**: static aggregation strategies lose on
//! mismatched workloads; the adaptive lease policy tracks the better
//! static extreme across the whole read/write spectrum.
//!
//! Sweeps the write fraction from 0 to 1 on a fixed tree and reports
//! messages per request for push-all (Astrolabe-like), pull-all
//! (MDS-2-like), RWW, and the offline optimum.

use oat_core::agg::SumI64;
use oat_core::policy::baseline::{AlwaysLeaseSpec, NeverLeaseSpec};
use oat_core::policy::rww::RwwSpec;
use oat_core::tree::Tree;
use oat_offline::opt_dp::opt_total_cost;
use oat_sim::{Engine, Schedule};

use crate::table::{f3, Table};

/// One sweep point.
pub struct SweepPoint {
    /// Write fraction.
    pub wf: f64,
    /// Messages/request for (rww, push, pull, opt).
    pub rww: f64,
    /// push-all (prewarmed AlwaysLease).
    pub push: f64,
    /// pull-all (NeverLease).
    pub pull: f64,
    /// offline optimum.
    pub opt: f64,
}

/// Computes the sweep on `tree` with `len` requests per point.
pub fn sweep(tree: &Tree, len: usize) -> Vec<SweepPoint> {
    let fractions = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
    let mut out = Vec::new();
    for (i, &wf) in fractions.iter().enumerate() {
        let seq = oat_workloads::uniform(tree, len, wf, 31 + i as u64);
        let per = |total: u64| total as f64 / len as f64;

        let rww = oat_sim::run_sequential(tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false)
            .total_msgs();
        let mut push_engine = Engine::new(
            tree.clone(),
            SumI64,
            &AlwaysLeaseSpec,
            Schedule::Fifo,
            false,
        );
        push_engine.prewarm_leases();
        let push_chunk = oat_sim::sequential::run_sequential_on(&mut push_engine, &seq, 0);
        let push: u64 = push_chunk.per_request_msgs.iter().sum();
        let pull =
            oat_sim::run_sequential(tree, SumI64, &NeverLeaseSpec, Schedule::Fifo, &seq, false)
                .total_msgs();
        let opt = opt_total_cost(tree, &seq);
        out.push(SweepPoint {
            wf,
            rww: per(rww),
            push: per(push),
            pull: per(pull),
            opt: per(opt),
        });
    }
    out
}

/// Runs E10.
pub fn run() -> Vec<Table> {
    let tree = Tree::kary(32, 2);
    let points = sweep(&tree, 2000);
    let mut t = Table::new(
        "E10 / §1 motivation — messages per request vs write fraction (32-node binary tree)",
        &[
            "write frac",
            "RWW",
            "push-all",
            "pull-all",
            "OPT",
            "RWW/best-static",
        ],
    );
    t.note("push-all ≈ Astrolabe (prewarmed leases); pull-all ≈ MDS-2");
    for p in &points {
        let best_static = p.push.min(p.pull);
        t.row(vec![
            format!("{:.2}", p.wf),
            f3(p.rww),
            f3(p.push),
            f3(p.pull),
            f3(p.opt),
            if best_static > 0.0 {
                f3(p.rww / best_static)
            } else {
                "-".into()
            },
        ]);
    }
    t.note("static strategies invert their ranking across the sweep; RWW tracks the winner");
    vec![t]
}

#[cfg(test)]
mod tests {
    use oat_core::tree::Tree;

    #[test]
    fn static_strategies_cross_over_and_rww_adapts() {
        let tree = Tree::kary(16, 2);
        let pts = super::sweep(&tree, 600);
        let read_heavy = &pts[1]; // wf = 0.1
        let write_heavy = &pts[5]; // wf = 0.9
                                   // Each static strategy wins one regime...
        assert!(read_heavy.push < read_heavy.pull);
        assert!(write_heavy.pull < write_heavy.push);
        // ...and RWW is never far from the better one.
        for p in &pts {
            let best = p.push.min(p.pull);
            assert!(
                p.rww <= best * 2.0 + 0.5,
                "RWW {:.2} vs best static {best:.2} at wf {:.2}",
                p.rww,
                p.wf
            );
            // And always within Theorem 1's bound of OPT.
            assert!(p.rww <= 2.5 * p.opt + 1e-9);
        }
    }
}
