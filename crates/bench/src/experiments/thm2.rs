//! **E6 — Theorem 2**: RWW is 5-competitive against any *nice*
//! (strictly consistent) algorithm.
//!
//! We compare against the epoch lower bound of the Theorem-2 proof: NOPT
//! pays at least one message per completed write→combine epoch per
//! ordered pair. Measured ratios are conservative upper bounds on
//! RWW/NOPT; per-pair, the structural inequality `C_RWW(σ,u,v) ≤
//! 5·epochs + 5` is also audited.

use oat_core::agg::SumI64;
use oat_core::policy::rww::RwwSpec;
use oat_core::request::sigma;
use oat_offline::adversary::{adv_sequence, adv_tree};
use oat_offline::nopt::{epoch_count, nopt_total_lower_bound, rww_epoch_bound};
use oat_sim::{run_sequential, Schedule};

use crate::table::{opt_f3, Table};

/// Runs E6.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E6 / Theorem 2 — RWW vs the nice-algorithm epoch lower bound",
        &[
            "topology",
            "workload",
            "C_RWW",
            "epoch LB(NOPT)",
            "ratio",
            "per-pair 5·e+5 ok",
        ],
    );
    t.note("ratio is C_RWW / lower-bound(NOPT): an upper bound on the true RWW/NOPT ratio;");
    t.note("Theorem 2 guarantees the true ratio ≤ 5.");
    for (tname, tree) in super::thm1::topologies() {
        for (wname, seq) in super::thm1::workloads(&tree, 2000) {
            let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
            let lb = nopt_total_lower_bound(&tree, &seq);
            let mut per_pair_ok = true;
            for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
                let epochs = epoch_count(&sigma(&tree, &seq, u, v));
                if res.engine.stats().pair_cost(&tree, u, v) > rww_epoch_bound(epochs) {
                    per_pair_ok = false;
                }
            }
            let ratio = if lb > 0 {
                Some(res.total_msgs() as f64 / lb as f64)
            } else {
                None
            };
            t.row(vec![
                tname.into(),
                wname,
                res.total_msgs().to_string(),
                lb.to_string(),
                opt_f3(ratio),
                if per_pair_ok {
                    "yes".into()
                } else {
                    "VIOLATED".into()
                },
            ]);
        }
    }
    // The adversarial cycle: RWW pays 5 per epoch, NOPT-LB counts 1.
    let tree = adv_tree();
    let seq = adv_sequence(1, 2, 2000);
    let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
    let lb = nopt_total_lower_bound(&tree, &seq);
    t.row(vec![
        "pair".into(),
        "adversarial RWW cycles".into(),
        res.total_msgs().to_string(),
        lb.to_string(),
        opt_f3(Some(res.total_msgs() as f64 / lb as f64)),
        "tight at 5".into(),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn per_pair_epoch_bound_never_violated() {
        for table in super::run() {
            for row in &table.rows {
                assert_ne!(row[5], "VIOLATED", "{row:?}");
            }
        }
    }

    #[test]
    fn adversarial_ratio_approaches_five() {
        let tables = super::run();
        let last = tables[0].rows.last().unwrap();
        let ratio: f64 = last[4].parse().unwrap();
        assert!((ratio - 5.0).abs() < 0.05, "expected ≈5, got {ratio}");
    }
}
