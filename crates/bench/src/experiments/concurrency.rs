//! **E15 — concurrency effects**: what overlap does to cost and
//! consistency.
//!
//! The paper's cost analysis is for sequential executions; Section 5
//! only claims *consistency* (causal) for concurrent ones. This
//! experiment measures what actually happens to message cost and to
//! strict consistency as request overlap grows: coalesced combines and
//! shared probe fan-outs can make concurrent executions *cheaper* than
//! sequential ones, while strict misses climb — the price/benefit
//! trade-off the paper's split between Sections 4 and 5 implies.

use oat_core::agg::SumI64;
use oat_core::policy::rww::RwwSpec;
use oat_core::tree::Tree;
use oat_sim::concurrent::{run_concurrent, Completion};
use oat_sim::{run_sequential, Schedule};

use crate::table::{f3, Table};

/// One sweep point: overlap level → cost and consistency effects.
pub struct OverlapPoint {
    /// Initiation probability per step (higher = more overlap).
    pub aggressiveness: f64,
    /// Messages relative to the sequential run of the same workload.
    pub msg_ratio: f64,
    /// Fraction of combines returning non-instantaneous values.
    pub strict_miss_rate: f64,
}

/// Sweeps overlap on `tree` with a fixed workload (mean over seeds).
pub fn sweep(tree: &Tree, len: usize, seeds: u64) -> Vec<OverlapPoint> {
    let mut out = Vec::new();
    for &aggr in &[0.05, 0.3, 0.6, 0.9] {
        let mut msg_ratio = 0.0;
        let mut miss = 0.0;
        for seed in 0..seeds {
            let seq = oat_workloads::uniform(tree, len, 0.5, seed * 7 + 1);
            let seq_cost =
                run_sequential(tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false).total_msgs();
            let res = run_concurrent(tree, SumI64, &RwwSpec, &seq, seed, aggr);
            let combines = res
                .completions
                .iter()
                .filter(|c| matches!(c, Completion::Combine { .. }))
                .count();
            msg_ratio += res.total_msgs as f64 / seq_cost as f64;
            miss += res.strict_misses() as f64 / combines.max(1) as f64;
        }
        out.push(OverlapPoint {
            aggressiveness: aggr,
            msg_ratio: msg_ratio / seeds as f64,
            strict_miss_rate: miss / seeds as f64,
        });
    }
    out
}

/// Runs E15.
pub fn run() -> Vec<Table> {
    let tree = Tree::kary(16, 2);
    let points = sweep(&tree, 200, 8);
    let mut t = Table::new(
        "E15 / concurrency effects — overlap vs cost and strict consistency (16-node tree)",
        &["initiation prob.", "msgs vs sequential", "strict-miss rate"],
    );
    t.note("mean over 8 seeds, 200 uniform requests; causal consistency holds at every point");
    for p in &points {
        t.row(vec![
            format!("{:.2}", p.aggressiveness),
            f3(p.msg_ratio),
            format!("{:.0}%", p.strict_miss_rate * 100.0),
        ]);
    }
    t.note("overlap coalesces combines and shares probe fan-outs (cost drops)");
    t.note("while instantaneous-value reads become impossible (misses climb)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_reduces_cost_and_increases_misses() {
        let tree = Tree::kary(12, 2);
        let pts = sweep(&tree, 150, 4);
        let low = &pts[0];
        let high = &pts[3];
        assert!(
            high.msg_ratio < low.msg_ratio,
            "more overlap should coalesce work: {} vs {}",
            high.msg_ratio,
            low.msg_ratio
        );
        assert!(
            high.strict_miss_rate > low.strict_miss_rate,
            "more overlap should miss more: {} vs {}",
            high.strict_miss_rate,
            low.strict_miss_rate
        );
        // Near-sequential execution is near-strict.
        assert!(low.strict_miss_rate < 0.35, "{}", low.strict_miss_rate);
    }
}
