//! **E7 — Theorem 3**: every `(a,b)`-algorithm is at least
//! 5/2-competitive, so RWW's parameters are optimal.
//!
//! For each `(a,b)` in a grid, run the matched adversary (a combines at
//! `v`, then `b` writes at `u`, repeated) and report the algorithm's
//! measured cost against the per-edge OPT dynamic program, next to the
//! closed-form prediction `(2a + b + 1) / min(2a, b, 3)`.

use oat_offline::adversary::{adv_predicted_ratio, adv_sequence, adv_tree};
use oat_offline::opt_dp::opt_total_cost;
use oat_offline::replay::ab_total_cost;

use crate::table::{f3, Table};

/// Measured grid entry.
pub struct GridEntry {
    /// Parameters.
    pub a: u32,
    /// Parameters.
    pub b: u32,
    /// Measured ratio on the matched adversary.
    pub measured: f64,
    /// Closed-form steady-state prediction.
    pub predicted: f64,
}

/// Computes the grid for `a ∈ 1..=a_max`, `b ∈ 1..=b_max`.
pub fn grid(a_max: u32, b_max: u32, cycles: usize) -> Vec<GridEntry> {
    let tree = adv_tree();
    let mut out = Vec::new();
    for a in 1..=a_max {
        for b in 1..=b_max {
            let seq = adv_sequence(a, b, cycles);
            let alg = ab_total_cost(&tree, &seq, a, b);
            let opt = opt_total_cost(&tree, &seq);
            out.push(GridEntry {
                a,
                b,
                measured: alg as f64 / opt as f64,
                predicted: adv_predicted_ratio(a, b),
            });
        }
    }
    out
}

/// Runs E7.
pub fn run() -> Vec<Table> {
    let entries = grid(4, 6, 800);
    let mut t = Table::new(
        "E7 / Theorem 3 — the (a,b) adversary grid (800 cycles each)",
        &["a", "b", "measured ratio", "predicted", "≥ 2.5"],
    );
    t.note("adversary: a combines at v then b writes at u, repeated (2-node tree)");
    let mut best = (f64::INFINITY, 0u32, 0u32);
    for e in &entries {
        if e.measured < best.0 {
            best = (e.measured, e.a, e.b);
        }
        t.row(vec![
            e.a.to_string(),
            e.b.to_string(),
            f3(e.measured),
            f3(e.predicted),
            if e.measured >= 2.5 - 0.01 {
                "yes".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    t.note(format!(
        "minimum over the grid: {:.3} at (a,b) = ({},{}) — RWW, matching the 5/2 lower bound",
        best.0, best.1, best.2
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn grid_minimum_is_rww_at_5_over_2() {
        let entries = super::grid(3, 4, 400);
        let best = entries
            .iter()
            .min_by(|x, y| x.measured.total_cmp(&y.measured))
            .unwrap();
        assert_eq!((best.a, best.b), (1, 2));
        assert!((best.measured - 2.5).abs() < 0.01);
        for e in &entries {
            assert!(e.measured >= 2.5 - 0.01);
            assert!(
                (e.measured - e.predicted).abs() < 0.05,
                "({},{}) measured {} vs predicted {}",
                e.a,
                e.b,
                e.measured,
                e.predicted
            );
        }
    }
}
