//! **E13 — potential-function audit**: the Lemma-4.6 amortized
//! inequality, checked step by step on real traces with the paper's Φ.
//!
//! Over random and adversarial `σ'(u,v)` traces, replay RWW against the
//! OPT trajectory and report the maximum per-step violation of
//! `ΔΦ + cost_RWW ≤ (5/2)·cost_OPT` (must be ≤ 0) and the total-cost
//! slack.

use oat_core::request::{sigma_prime_of, EdgeEvent};
use oat_lp::figure5::PAPER_C;
use oat_lp::potential::audit_trace;

use crate::table::{f3, Table};

/// Runs E13.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E13 / potential audit — Φ(after) − Φ(before) + c_RWW ≤ (5/2)·c_OPT per step",
        &[
            "trace family",
            "traces",
            "C_RWW",
            "C_OPT",
            "worst step slack",
            "ratio",
        ],
    );
    t.note("worst step slack = max over steps of ΔΦ + c_RWW − 2.5·c_OPT (must be ≤ 0)");

    // Adversarial family.
    let mut raw = Vec::new();
    for _ in 0..400 {
        raw.extend([EdgeEvent::R, EdgeEvent::W, EdgeEvent::W]);
    }
    let rep = audit_trace(&sigma_prime_of(&raw));
    t.row(vec![
        "adversarial R·W·W".into(),
        "1".into(),
        rep.rww_cost.to_string(),
        rep.opt_cost.to_string(),
        f3(rep.max_step_violation),
        f3(rep.rww_cost as f64 / rep.opt_cost as f64),
    ]);

    // Random families at several read/write biases.
    let mut seed = 123u64;
    for &bias in &[25u64, 50, 75] {
        let mut worst = f64::NEG_INFINITY;
        let mut rww_total = 0u64;
        let mut opt_total = 0u64;
        let traces = 200;
        for _ in 0..traces {
            let mut raw = Vec::new();
            for _ in 0..300 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                raw.push(if (seed >> 33) % 100 < bias {
                    EdgeEvent::R
                } else {
                    EdgeEvent::W
                });
            }
            let rep = audit_trace(&sigma_prime_of(&raw));
            worst = worst.max(rep.max_step_violation);
            rww_total += rep.rww_cost;
            opt_total += rep.opt_cost;
        }
        t.row(vec![
            format!("random {bias}% reads"),
            traces.to_string(),
            rww_total.to_string(),
            opt_total.to_string(),
            f3(worst),
            f3(rww_total as f64 / opt_total as f64),
        ]);
    }
    t.note(format!("c = {PAPER_C} (Figure 5 optimum)"));
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn no_positive_step_slack() {
        for table in super::run() {
            for row in &table.rows {
                let slack: f64 = row[4].parse().unwrap();
                assert!(slack <= 1e-9, "{row:?}");
                let ratio: f64 = row[5].parse().unwrap();
                assert!(ratio <= 2.5 + 0.01, "{row:?}");
            }
        }
    }
}
