//! **E2 — Figure 3 / Corollary 4.1**: RWW is a (1,2)-algorithm.
//!
//! Over random trees and workloads, track every ordered pair's
//! `u.granted[v]` across quiescent states and classify each change:
//! grants must follow exactly one combine in `σ(u,v)` (a = 1), breaks
//! must follow exactly two consecutive writes (b = 2), and Lemma 4.4
//! (`F_RWW > 0 ⟺ granted`) must hold in every quiescent state.

use oat_core::agg::SumI64;
use oat_core::policy::rww::RwwSpec;
use oat_core::request::{sigma, EdgeEvent, ReqOp};
use oat_sim::{Engine, Schedule};

use crate::table::Table;

/// Statistics gathered by the conformance sweep.
#[derive(Default, Debug)]
pub struct Fig3Stats {
    /// Quiescent states × ordered pairs checked.
    pub checks: u64,
    /// Lease set events, all after exactly 1 combine.
    pub grants: u64,
    /// Lease break events, all after exactly 2 consecutive writes.
    pub breaks: u64,
    /// Lemma 4.4 violations (must be 0).
    pub f_mismatches: u64,
    /// Grants not caused by a combine, or breaks not caused by a second
    /// consecutive write (must be 0).
    pub wrong_cause: u64,
}

/// Runs the sweep over `trees` random trees with `len` requests each.
pub fn sweep(trees: usize, len: usize) -> Fig3Stats {
    let mut st = Fig3Stats::default();
    for seed in 0..trees as u64 {
        let tree = oat_workloads::random_tree(6 + (seed as usize % 10), seed);
        let seq = oat_workloads::uniform(&tree, len, 0.5, seed ^ 0x5eed);
        let mut eng: Engine<RwwSpec, SumI64> =
            Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
        let pairs: Vec<_> = tree.dir_edges().collect();
        let mut prev: Vec<bool> = vec![false; pairs.len()];
        for i in 0..seq.len() {
            match &seq[i].op {
                ReqOp::Write(v) => eng.initiate_write(seq[i].node, *v),
                ReqOp::Combine => {
                    eng.initiate_combine(seq[i].node);
                }
            };
            eng.run_to_quiescence();
            let prefix = &seq[..=i];
            for (pi, &(u, v)) in pairs.iter().enumerate() {
                st.checks += 1;
                let granted = eng.node(u).granted(tree.nbr_index(u, v).unwrap());
                // F from the (1,2) automaton over the projected history.
                let events = sigma(&tree, prefix, u, v);
                let mut f = 0u8;
                for ev in events.iter().copied() {
                    f = match (f, ev) {
                        (_, EdgeEvent::R) => 2,
                        (0, EdgeEvent::W) => 0,
                        (x, EdgeEvent::W) => x - 1,
                        (x, EdgeEvent::N) => x,
                    };
                }
                if (f > 0) != granted {
                    st.f_mismatches += 1;
                }
                if granted != prev[pi] {
                    let last = events.last().copied();
                    if granted {
                        st.grants += 1;
                        // a = 1: the grant-causing request is one combine.
                        if last != Some(EdgeEvent::R) {
                            st.wrong_cause += 1;
                        }
                    } else {
                        st.breaks += 1;
                        // b = 2: the break follows two consecutive writes.
                        let k = events.len();
                        if k < 2 || events[k - 1] != EdgeEvent::W || events[k - 2] != EdgeEvent::W {
                            st.wrong_cause += 1;
                        }
                    }
                    prev[pi] = granted;
                }
            }
        }
    }
    st
}

/// Runs E2.
pub fn run() -> Vec<Table> {
    let st = sweep(12, 60);
    let mut t = Table::new(
        "E2 / Figure 3 + Corollary 4.1 — RWW is a (1,2)-algorithm",
        &["quantity", "value", "expectation"],
    );
    t.note("12 random trees (6-15 nodes), 60 uniform requests each");
    t.row(vec![
        "pair-state checks".into(),
        st.checks.to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "lease grants observed".into(),
        st.grants.to_string(),
        "all after exactly 1 combine".into(),
    ]);
    t.row(vec![
        "lease breaks observed".into(),
        st.breaks.to_string(),
        "all after 2 consecutive writes".into(),
    ]);
    t.row(vec![
        "mis-caused transitions".into(),
        st.wrong_cause.to_string(),
        "0".into(),
    ]);
    t.row(vec![
        "Lemma 4.4 mismatches".into(),
        st.f_mismatches.to_string(),
        "0".into(),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_is_clean() {
        let st = super::sweep(4, 40);
        assert!(st.grants > 0 && st.breaks > 0, "sweep must exercise both");
        assert_eq!(st.f_mismatches, 0);
        assert_eq!(st.wrong_cause, 0);
    }
}
