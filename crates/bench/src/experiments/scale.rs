//! **E12 — scalability**: messages per request vs tree size and shape.
//!
//! A fixed 50/50 workload over growing paths, stars, binary trees, and
//! random trees; per-policy messages per request. RWW's cost tracks the
//! workload's locality, not the tree size, once leases stabilise —
//! whereas pull-all scales with `n` on every combine.

use oat_core::agg::SumI64;
use oat_core::policy::baseline::NeverLeaseSpec;
use oat_core::policy::rww::RwwSpec;
use oat_core::tree::Tree;
use oat_offline::opt_dp::opt_total_cost;
use oat_sim::{run_sequential, Schedule};

use crate::table::{f3, Table};

/// Runs E12.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E12 / scalability — messages per request (uniform wf=0.5, 1000 requests)",
        &["topology", "n", "RWW", "pull-all", "OPT", "RWW/OPT"],
    );
    type TreeBuilder = fn(usize) -> Tree;
    let shapes: Vec<(&str, TreeBuilder)> = vec![
        ("path", Tree::path as TreeBuilder),
        ("star", Tree::star),
        ("binary", |n| Tree::kary(n, 2)),
        ("random", |n| oat_workloads::random_tree(n, 99)),
    ];
    for (shape, build) in shapes {
        for n in [8usize, 32, 128, 512] {
            let tree = build(n);
            let seq = oat_workloads::uniform(&tree, 1000, 0.5, n as u64);
            let rww = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false)
                .total_msgs() as f64
                / 1000.0;
            let pull = run_sequential(&tree, SumI64, &NeverLeaseSpec, Schedule::Fifo, &seq, false)
                .total_msgs() as f64
                / 1000.0;
            let opt = opt_total_cost(&tree, &seq) as f64 / 1000.0;
            t.row(vec![
                shape.into(),
                n.to_string(),
                f3(rww),
                f3(pull),
                f3(opt),
                if opt > 0.0 { f3(rww / opt) } else { "-".into() },
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn rww_within_bound_at_every_size() {
        for table in super::run() {
            for row in &table.rows {
                if let Ok(r) = row[5].parse::<f64>() {
                    assert!(r <= 2.5 + 1e-9, "{row:?}");
                }
            }
        }
    }
}
