//! **E9 — Theorem 4**: lease-based algorithms are causally consistent in
//! concurrent executions — and strict consistency genuinely fails there,
//! so the causal guarantee is the meaningful one.
//!
//! Two execution substrates: the seeded interleaving simulator and the
//! one-thread-per-node runtime. The causal column must read `ok`
//! everywhere; the strict-miss column shows why Section 5 needs a weaker
//! model.

use oat_consistency::check_causal;
use oat_core::agg::SumI64;
use oat_core::policy::rww::RwwSpec;
use oat_core::tree::Tree;
use oat_sim::concurrent::{run_concurrent, Completion};

use crate::table::Table;

/// Runs E9.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E9 / Theorem 4 — causal consistency in concurrent executions",
        &[
            "substrate",
            "topology",
            "seed",
            "combines",
            "strict misses",
            "causal",
        ],
    );
    let topologies = vec![
        ("path-10", Tree::path(10)),
        ("3ary-13", Tree::kary(13, 3)),
        ("random-12", oat_workloads::random_tree(12, 5)),
    ];
    for (tname, tree) in &topologies {
        for seed in 0..4u64 {
            let seq = oat_workloads::uniform(tree, 150, 0.5, seed * 31 + 7);
            let res = run_concurrent(tree, SumI64, &RwwSpec, &seq, seed, 0.8);
            let combines = res
                .completions
                .iter()
                .filter(|c| matches!(c, Completion::Combine { .. }))
                .count();
            let logs: Vec<_> = tree
                .nodes()
                .map(|u| res.engine.node(u).ghost().unwrap().log.clone())
                .collect();
            let causal = match check_causal(&SumI64, &logs) {
                Ok(_) => "ok".to_string(),
                Err(e) => format!("VIOLATION {e:?}"),
            };
            t.row(vec![
                "interleaved".into(),
                (*tname).into(),
                seed.to_string(),
                combines.to_string(),
                res.strict_misses().to_string(),
                causal,
            ]);
        }
        // Threaded substrate.
        let seq = oat_workloads::uniform(tree, 150, 0.5, 99);
        let res = oat_concurrent::run_threaded(tree, SumI64, &RwwSpec, &seq, None);
        let causal = match check_causal(&SumI64, &res.logs) {
            Ok(rep) => format!("ok ({} pairs)", rep.checked_pairs),
            Err(e) => format!("VIOLATION {e:?}"),
        };
        t.row(vec![
            "threads".into(),
            (*tname).into(),
            "-".into(),
            res.combine_values.len().to_string(),
            "-".into(),
            causal,
        ]);
    }
    vec![t, hierarchy_table()]
}

/// E9b: where concurrent lease-based executions sit in the consistency
/// hierarchy (strict ⟹ sequential ⟹ causal).
fn hierarchy_table() -> Table {
    use oat_consistency::{check_sequentially_consistent, own_histories};

    let mut t = Table::new(
        "E9b / consistency hierarchy — sampled concurrent runs (path-5, 24 requests)",
        &[
            "seed",
            "strict misses",
            "sequentially consistent",
            "causally consistent",
        ],
    );
    t.note("strict ⟹ sequential ⟹ causal; concurrency preserves only causal (Theorem 4)");
    let tree = Tree::path(5);
    let mut sc_fail = 0;
    for seed in 0..8u64 {
        let seq = oat_workloads::uniform(&tree, 24, 0.5, seed);
        let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, seed, 0.7);
        let logs: Vec<_> = tree
            .nodes()
            .map(|u| res.engine.node(u).ghost().unwrap().log.clone())
            .collect();
        let causal = check_causal(&SumI64, &logs).is_ok();
        let sc = check_sequentially_consistent(&SumI64, &own_histories(&logs)).is_some();
        if !sc {
            sc_fail += 1;
        }
        t.row(vec![
            seed.to_string(),
            res.strict_misses().to_string(),
            if sc { "yes".into() } else { "NO".into() },
            if causal {
                "yes".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    t.note(format!(
        "sequential consistency failed on {sc_fail}/8 sampled runs; the deterministic IRIW \
         construction in tests/consistency_hierarchy.rs always separates it"
    ));
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn causal_everywhere() {
        let tables = super::run();
        for row in &tables[0].rows {
            assert!(row[5].starts_with("ok"), "{row:?}");
        }
        // The hierarchy table: causal column always yes.
        for row in &tables[1].rows {
            assert_eq!(row[3], "yes", "{row:?}");
        }
    }
}
