//! **E5 — Theorem 1**: RWW is 5/2-competitive against the optimal
//! offline lease-based algorithm, and the bound is tight.
//!
//! Sweeps topologies × workloads, reporting the simulated RWW cost, the
//! analytic replay (must agree exactly), the per-edge OPT dynamic
//! program, and the ratio. The adversarial R·W·W sequence demonstrates
//! tightness at 5/2.

use oat_core::tree::Tree;
use oat_offline::adversary::{adv_sequence, adv_tree};
use oat_offline::ratio::measure_rww;

use crate::table::{opt_f3, Table};

/// The topology suite shared by several experiments.
pub fn topologies() -> Vec<(&'static str, Tree)> {
    vec![
        ("pair", Tree::pair()),
        ("path-16", Tree::path(16)),
        ("path-64", Tree::path(64)),
        ("star-16", Tree::star(16)),
        ("star-64", Tree::star(64)),
        ("3ary-40", Tree::kary(40, 3)),
        ("random-32", oat_workloads::random_tree(32, 7)),
        ("random-128", oat_workloads::random_tree(128, 8)),
        ("caterpillar-24", oat_workloads::caterpillar(6, 3)),
    ]
}

/// The workload suite: `(name, generator)`.
pub fn workloads(tree: &Tree, seed: u64) -> Vec<(String, Vec<oat_core::request::Request<i64>>)> {
    vec![
        (
            "uniform wf=0.1".into(),
            oat_workloads::uniform(tree, 600, 0.1, seed),
        ),
        (
            "uniform wf=0.5".into(),
            oat_workloads::uniform(tree, 600, 0.5, seed + 1),
        ),
        (
            "uniform wf=0.9".into(),
            oat_workloads::uniform(tree, 600, 0.9, seed + 2),
        ),
        (
            "hotspot".into(),
            oat_workloads::hotspot(
                tree,
                600,
                0.5,
                2.min(tree.len()),
                2.min(tree.len()),
                seed + 3,
            ),
        ),
        (
            "phases".into(),
            oat_workloads::phases(tree, &[(300, 0.1), (300, 0.9)], seed + 4),
        ),
        (
            "zipf a=1.0".into(),
            oat_workloads::zipf(tree, 600, 0.5, 1.0, seed + 5),
        ),
        (
            "diurnal".into(),
            oat_workloads::diurnal(tree, 600, 2.0, seed + 6),
        ),
        (
            "bursty".into(),
            oat_workloads::bursty(tree, 600, 0.05, 15, 8, seed + 7),
        ),
    ]
}

/// Runs E5.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E5 / Theorem 1 — C_RWW(σ) ≤ 5/2 · C_OPT(σ)",
        &[
            "topology",
            "workload",
            "C_RWW(sim)",
            "C_RWW(analytic)",
            "C_OPT",
            "ratio",
            "≤ 2.5",
        ],
    );
    let mut worst: f64 = 0.0;
    for (tname, tree) in topologies() {
        for (wname, seq) in workloads(&tree, 1000) {
            let rep = measure_rww(&tree, &seq);
            let ratio = rep.ratio_vs_opt();
            if let Some(r) = ratio {
                worst = worst.max(r);
            }
            t.row(vec![
                tname.into(),
                wname,
                rep.online_cost.to_string(),
                rep.analytic_cost.unwrap().to_string(),
                rep.opt_cost.to_string(),
                opt_f3(ratio),
                if ratio.unwrap_or(0.0) <= 2.5 + 1e-9 {
                    "yes".into()
                } else {
                    "VIOLATED".into()
                },
            ]);
        }
    }
    // Tightness row.
    let tree = adv_tree();
    let seq = adv_sequence(1, 2, 2000);
    let rep = measure_rww(&tree, &seq);
    t.row(vec![
        "pair".into(),
        "adversarial RWW cycles".into(),
        rep.online_cost.to_string(),
        rep.analytic_cost.unwrap().to_string(),
        rep.opt_cost.to_string(),
        opt_f3(rep.ratio_vs_opt()),
        "tight".into(),
    ]);
    t.note(format!("worst non-adversarial ratio observed: {worst:.3}"));
    vec![t, seed_sweep_table()]
}

/// E5b: statistical confidence — the worst and mean ratio over many
/// seeded workloads per topology.
fn seed_sweep_table() -> Table {
    let mut t = Table::new(
        "E5b / Theorem 1 — ratio distribution over 60 seeds per topology",
        &[
            "topology",
            "workload family",
            "mean ratio",
            "max ratio",
            "≤ 2.5",
        ],
    );
    t.note("uniform workloads, 400 requests each, write fraction drawn from the seed");
    for (tname, tree) in [
        ("pair", Tree::pair()),
        ("star-16", Tree::star(16)),
        ("3ary-40", Tree::kary(40, 3)),
        ("random-32", oat_workloads::random_tree(32, 123)),
    ] {
        let mut max: f64 = 0.0;
        let mut sum = 0.0;
        let mut count = 0usize;
        for seed in 0..60u64 {
            let wf = 0.05 + 0.9 * ((seed as f64 * 0.61803) % 1.0);
            let seq = oat_workloads::uniform(&tree, 400, wf, seed * 31 + 5);
            let rep = measure_rww(&tree, &seq);
            if let Some(r) = rep.ratio_vs_opt() {
                max = max.max(r);
                sum += r;
                count += 1;
            }
        }
        t.row(vec![
            tname.into(),
            "uniform, wf ∈ [0.05, 0.95]".into(),
            format!("{:.3}", sum / count as f64),
            format!("{max:.3}"),
            if max <= 2.5 + 1e-9 {
                "yes".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_within_bound_and_analytic_matches() {
        let tables = super::run();
        for row in &tables[0].rows {
            assert_ne!(row[6], "VIOLATED", "{row:?}");
            assert_eq!(row[2], row[3], "analytic/simulated divergence: {row:?}");
        }
        for row in &tables[1].rows {
            assert_eq!(row[4], "yes", "{row:?}");
        }
    }
}
