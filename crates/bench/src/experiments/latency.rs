//! **E14 — latency**: the other axis of the paper's motivation.
//!
//! Section 1 argues a pull-everything strategy "suffers from unnecessary
//! latency … on read-dominated workloads". Message counts alone don't
//! show that, so this experiment measures *hop latency*: the causal
//! depth of the message chain completing each request (a combine
//! answered from leases is 0 hops; a cold combine on a path of n nodes
//! takes 2(n−1) hops).
//!
//! RWW buys near-push read latency at near-optimal message cost —
//! leases answer repeat reads locally — while pull-all pays the full
//! round trip on every combine, forever.

use oat_core::agg::SumI64;
use oat_core::policy::baseline::{AlwaysLeaseSpec, NeverLeaseSpec};
use oat_core::policy::rww::RwwSpec;
use oat_core::policy::PolicySpec;
use oat_core::request::Request;
use oat_core::tree::Tree;
use oat_sim::{Engine, Schedule};

use crate::table::{f3, Table};

/// Read/write latency summary for one policy on one workload.
pub struct LatencySummary {
    /// Mean hop latency over combines.
    pub read_mean: f64,
    /// Maximum hop latency over combines.
    pub read_max: u32,
    /// Fraction of combines answered locally (0 hops).
    pub read_local: f64,
    /// Mean hop latency over writes (depth of the update cascade).
    pub write_mean: f64,
    /// Messages per request.
    pub msgs_per_req: f64,
}

/// Measures latency and message cost for a policy (optionally
/// prewarmed).
pub fn measure<S: PolicySpec>(
    spec: &S,
    tree: &Tree,
    seq: &[Request<i64>],
    prewarm: bool,
) -> LatencySummary {
    let mut eng = Engine::new(tree.clone(), SumI64, spec, Schedule::Fifo, false);
    if prewarm {
        eng.prewarm_leases();
    }
    let chunk = oat_sim::sequential::run_sequential_on(&mut eng, seq, 0);
    let mut read_lat = Vec::new();
    let mut write_lat = Vec::new();
    for (q, &lat) in seq.iter().zip(&chunk.per_request_latency) {
        if q.op.is_combine() {
            read_lat.push(lat);
        } else {
            write_lat.push(lat);
        }
    }
    let mean = |v: &[u32]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64
        }
    };
    LatencySummary {
        read_mean: mean(&read_lat),
        read_max: read_lat.iter().copied().max().unwrap_or(0),
        read_local: if read_lat.is_empty() {
            0.0
        } else {
            read_lat.iter().filter(|&&x| x == 0).count() as f64 / read_lat.len() as f64
        },
        write_mean: mean(&write_lat),
        msgs_per_req: chunk.per_request_msgs.iter().sum::<u64>() as f64 / seq.len() as f64,
    }
}

/// Runs E14.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E14 / latency — hop latency vs message cost (64-node binary tree)",
        &[
            "workload",
            "policy",
            "read mean",
            "read max",
            "reads local",
            "write mean",
            "msgs/req",
        ],
    );
    t.note("hop latency = causal depth of the completing message chain (0 = answered locally)");
    let tree = Tree::kary(64, 2);
    for (wname, wf) in [("read-heavy (10% w)", 0.1), ("write-heavy (90% w)", 0.9)] {
        let seq = oat_workloads::uniform(&tree, 2000, wf, 8);
        let mut push = |policy: &str, s: LatencySummary| {
            t.row(vec![
                wname.into(),
                policy.into(),
                f3(s.read_mean),
                s.read_max.to_string(),
                format!("{:.0}%", s.read_local * 100.0),
                f3(s.write_mean),
                f3(s.msgs_per_req),
            ]);
        };
        push("RWW", measure(&RwwSpec, &tree, &seq, false));
        push("push-all", measure(&AlwaysLeaseSpec, &tree, &seq, true));
        push("pull-all", measure(&NeverLeaseSpec, &tree, &seq, false));
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_all_reads_slow_push_all_reads_instant() {
        let tree = Tree::kary(32, 2);
        let seq = oat_workloads::uniform(&tree, 400, 0.1, 3);
        let pull = measure(&NeverLeaseSpec, &tree, &seq, false);
        let push = measure(&AlwaysLeaseSpec, &tree, &seq, true);
        let rww = measure(&RwwSpec, &tree, &seq, false);
        assert_eq!(push.read_mean, 0.0, "prewarmed push answers locally");
        assert!(
            pull.read_mean > 4.0,
            "pull pays round trips: {}",
            pull.read_mean
        );
        // RWW: most reads local on a read-heavy mix.
        assert!(rww.read_local > 0.5, "RWW locality {}", rww.read_local);
        assert!(rww.read_mean < pull.read_mean);
    }

    #[test]
    fn cold_read_latency_is_twice_eccentricity_on_a_path() {
        let tree = Tree::path(9);
        let seq = vec![oat_core::request::Request::combine(oat_core::tree::NodeId(
            0,
        ))];
        let s = measure(&RwwSpec, &tree, &seq, false);
        assert_eq!(s.read_max, 16, "down 8 hops and back");
    }
}
