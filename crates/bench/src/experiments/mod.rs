//! Experiment implementations, one module per paper artefact.
//!
//! Each `run()` returns one or more [`crate::table::Table`]s; the
//! `tables` binary prints them and EXPERIMENTS.md archives them.

pub mod ablation;
pub mod causal;
pub mod concurrency;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod latency;
pub mod modelcheck;
pub mod motivation;
pub mod potential;
pub mod scale;
pub mod strict;
pub mod thm1;
pub mod thm2;
pub mod thm3;

use crate::table::Table;

/// An experiment entry point.
pub type ExperimentFn = fn() -> Vec<Table>;

/// All experiments in presentation order, with their CLI names.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig2", fig2::run as ExperimentFn),
        ("fig3", fig3::run),
        ("fig4", fig4::run),
        ("fig5", fig5::run),
        ("thm1", thm1::run),
        ("thm2", thm2::run),
        ("thm3", thm3::run),
        ("strict", strict::run),
        ("causal", causal::run),
        ("concurrency", concurrency::run),
        ("modelcheck", modelcheck::run),
        ("motivation", motivation::run),
        ("ablation-b", ablation::run),
        ("scale", scale::run),
        ("latency", latency::run),
        ("potential", potential::run),
    ]
}
