//! **E3 — Figure 4**: the OPT × RWW product state machine.
//!
//! Prints the transition relation generated from the Figure-2 rows and
//! RWW determinism, then replays random `σ'(u,v)` traces (RWW automaton
//! against the OPT dynamic-program trajectory) and counts how often each
//! transition fires — verifying that everything observed is in the
//! diagram and that the diagram is fully exercised.

use oat_core::request::{sigma_prime_of, EdgeEvent};
use oat_lp::state_machine::{enumerate_transitions, rww_step, ProductState, Transition};
use oat_offline::cost_model::edge_cost;
use oat_offline::opt_dp::opt_edge_trajectory;

use crate::table::Table;

fn ev_label(e: EdgeEvent) -> &'static str {
    match e {
        EdgeEvent::R => "R",
        EdgeEvent::W => "W",
        EdgeEvent::N => "N",
    }
}

/// Replays `traces` random traces of length `len`, counting observed
/// transitions. Returns `(counts aligned with enumerate_transitions(),
/// unknown-transition count)`.
pub fn observe(traces: usize, len: usize) -> (Vec<(Transition, u64)>, u64) {
    let transitions = enumerate_transitions();
    let mut counts: Vec<(Transition, u64)> = transitions.iter().map(|&t| (t, 0)).collect();
    let mut unknown = 0u64;
    let mut seed = 0x517cc1b727220a95u64;
    for _ in 0..traces {
        let mut raw = Vec::with_capacity(len);
        for _ in 0..len {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            raw.push(if (seed >> 35).is_multiple_of(2) {
                EdgeEvent::R
            } else {
                EdgeEvent::W
            });
        }
        let events = sigma_prime_of(&raw);
        let (_, opt_states) = opt_edge_trajectory(&events);
        let mut opt = false;
        let mut rww = 0u8;
        for (i, &ev) in events.iter().enumerate() {
            let (ny, rcost) = rww_step(rww, ev);
            let opt_next = opt_states[i];
            let ocost = edge_cost(opt, ev, opt_next).expect("legal OPT move");
            let tr = Transition {
                from: ProductState { opt, rww },
                event: ev,
                to: ProductState {
                    opt: opt_next,
                    rww: ny,
                },
                rww_cost: rcost,
                opt_cost: ocost,
            };
            match counts.iter_mut().find(|(t, _)| *t == tr) {
                Some((_, c)) => *c += 1,
                None => unknown += 1,
            }
            opt = opt_next;
            rww = ny;
        }
    }
    (counts, unknown)
}

/// Runs E3.
pub fn run() -> Vec<Table> {
    let (counts, unknown) = observe(200, 200);
    let mut t = Table::new(
        "E3 / Figure 4 — product state machine S(F_OPT, F_RWW)",
        &["from", "event", "to", "RWW cost", "OPT cost", "observed"],
    );
    t.note("observed = firings over 200 random σ'(u,v) traces × 200 events,");
    t.note("with OPT playing its per-edge optimal trajectory");
    t.note(format!(
        "transitions outside the diagram observed: {unknown} (must be 0)"
    ));
    for (tr, c) in &counts {
        t.row(vec![
            tr.from.label(),
            ev_label(tr.event).into(),
            tr.to.label(),
            tr.rww_cost.to_string(),
            tr.opt_cost.to_string(),
            c.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn observed_transitions_stay_in_the_diagram() {
        let (counts, unknown) = super::observe(50, 100);
        assert_eq!(unknown, 0);
        // The R/W-only traces never fire N-breaks of OPT, but the bulk of
        // the diagram gets exercised.
        let fired = counts.iter().filter(|(_, c)| *c > 0).count();
        assert!(fired >= 10, "only {fired} transitions fired");
    }
}
