//! **E11 — ablation**: why break after exactly *two* writes?
//!
//! Sweeps the break threshold `b` in `(1,b)`-algorithms (and the grant
//! threshold `a` for completeness) over three workload families:
//! each algorithm's own worst case (its matched adversary), a uniform
//! mix, and a phase-shifting mix. `b = 2` uniquely minimises the
//! worst-case column — the design point the paper proves optimal.

use oat_core::tree::Tree;
use oat_offline::adversary::{adv_sequence, adv_tree};
use oat_offline::opt_dp::opt_total_cost;
use oat_offline::replay::ab_total_cost;

use crate::table::{f3, Table};

/// Ratio of an `(a,b)` replay to OPT on a sequence.
fn ratio(tree: &Tree, seq: &[oat_core::request::Request<i64>], a: u32, b: u32) -> f64 {
    let alg = ab_total_cost(tree, seq, a, b) as f64;
    let opt = opt_total_cost(tree, seq) as f64;
    if opt == 0.0 {
        0.0
    } else {
        alg / opt
    }
}

/// Runs E11.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E11 / ablation — grant/break thresholds (a,b): ratio vs OPT",
        &["a", "b", "own adversary", "uniform wf=0.5", "phases"],
    );
    t.note("'own adversary' = the matched Theorem-3 sequence — the policy's worst case");
    let tree = Tree::kary(24, 2);
    let uniform = oat_workloads::uniform(&tree, 1500, 0.5, 4);
    let phased = oat_workloads::phases(&tree, &[(750, 0.1), (750, 0.9)], 5);
    let adv_t = adv_tree();
    let mut best_adv = (f64::INFINITY, 0, 0);
    for a in 1..=2u32 {
        for b in 1..=6u32 {
            let adv = ratio(&adv_t, &adv_sequence(a, b, 600), a, b);
            if adv < best_adv.0 {
                best_adv = (adv, a, b);
            }
            t.row(vec![
                a.to_string(),
                b.to_string(),
                f3(adv),
                f3(ratio(&tree, &uniform, a, b)),
                f3(ratio(&tree, &phased, a, b)),
            ]);
        }
    }
    t.note(format!(
        "worst-case minimiser: (a,b) = ({},{}) at {:.3} — the paper's RWW",
        best_adv.1, best_adv.2, best_adv.0
    ));
    vec![t, randomized_table(), realizable_opt_table()]
}

/// Extension: randomized breaking vs the deterministic adversary.
///
/// The Theorem-3 adversary is tuned to deterministic break points; a
/// policy that breaks each unread write with probability `1/b` blunts
/// it. This table simulates `RandomBreak(1/b)` on the (1,2)-adversary
/// and on uniform workloads (mean over seeds) next to RWW.
fn randomized_table() -> Table {
    use oat_core::agg::SumI64;
    use oat_core::policy::random::RandomBreakSpec;
    use oat_core::policy::rww::RwwSpec;
    use oat_sim::{run_sequential, Schedule};

    let mut t = Table::new(
        "E11b / extension — randomized lease breaking (mean of 10 seeds)",
        &["policy", "RWW-adversary ratio", "uniform wf=0.5 ratio"],
    );
    t.note("adversary = the deterministic (1,2) sequence; randomization blunts it");
    let adv_t = adv_tree();
    let adv_seq = adv_sequence(1, 2, 400);
    let tree = Tree::kary(24, 2);
    let uni = oat_workloads::uniform(&tree, 1200, 0.5, 77);
    let adv_opt = opt_total_cost(&adv_t, &adv_seq) as f64;
    let uni_opt = opt_total_cost(&tree, &uni) as f64;

    let rww_adv = run_sequential(&adv_t, SumI64, &RwwSpec, Schedule::Fifo, &adv_seq, false)
        .total_msgs() as f64;
    let rww_uni =
        run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &uni, false).total_msgs() as f64;
    t.row(vec![
        "RWW (deterministic)".into(),
        f3(rww_adv / adv_opt),
        f3(rww_uni / uni_opt),
    ]);
    for b in [2u32, 3] {
        let mut adv_cost = 0.0;
        let mut uni_cost = 0.0;
        let seeds = 10;
        for seed in 0..seeds {
            let spec = RandomBreakSpec::new(b, seed);
            adv_cost += run_sequential(&adv_t, SumI64, &spec, Schedule::Fifo, &adv_seq, false)
                .total_msgs() as f64;
            uni_cost += run_sequential(&tree, SumI64, &spec, Schedule::Fifo, &uni, false)
                .total_msgs() as f64;
        }
        t.row(vec![
            format!("RandomBreak(1/{b})"),
            f3(adv_cost / seeds as f64 / adv_opt),
            f3(uni_cost / seeds as f64 / uni_opt),
        ]);
    }
    t
}

/// The paper-OPT vs realizable-OPT gap (the noop-break subtlety).
fn realizable_opt_table() -> Table {
    use oat_offline::opt_dp::opt_total_cost_realizable;

    let mut t = Table::new(
        "E11c / OPT variants — Figure-2 OPT vs mechanically realizable OPT",
        &["workload", "OPT (Figure 2)", "OPT (realizable)", "gap"],
    );
    t.note("Figure-2 OPT may drop a lease for 1 message on a noop; the mechanism");
    t.note("cannot always realise that (no release trigger at leaves). All paper");
    t.note("bounds use the generous variant, so reported ratios are conservative.");
    let adv_t = adv_tree();
    for (name, seq) in [
        ("(1,2)-adversary".to_string(), adv_sequence(1, 2, 500)),
        ("(2,4)-adversary".to_string(), adv_sequence(2, 4, 500)),
    ] {
        let a = opt_total_cost(&adv_t, &seq);
        let b = opt_total_cost_realizable(&adv_t, &seq);
        t.row(vec![
            name,
            a.to_string(),
            b.to_string(),
            format!("{:+}", b as i64 - a as i64),
        ]);
    }
    let tree = Tree::kary(24, 2);
    let uni = oat_workloads::uniform(&tree, 1200, 0.5, 5);
    let a = opt_total_cost(&tree, &uni);
    let b = opt_total_cost_realizable(&tree, &uni);
    t.row(vec![
        "uniform wf=0.5".into(),
        a.to_string(),
        b.to_string(),
        format!("{:+}", b as i64 - a as i64),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn b_equals_2_minimises_worst_case() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let min = rows
            .iter()
            .min_by(|x, y| {
                x[2].parse::<f64>()
                    .unwrap()
                    .total_cmp(&y[2].parse::<f64>().unwrap())
            })
            .unwrap();
        assert_eq!(min[0], "1");
        assert_eq!(min[1], "2");
    }
}
