//! **E1 — Figure 2**: the per-edge cost table, measured on the real
//! mechanism.
//!
//! Each of the nine `(granted, request, granted', cost)` rows is driven
//! by a concrete scenario; the measured messages charged to the ordered
//! pair `C(σ,u,v)` and the resulting lease state must match the table.
//! Rows that only an eagerly-releasing policy exercises (the noop
//! releases) use a local `EagerBreak` policy — still a lease-based
//! algorithm in the paper's sense, defined right here to show the policy
//! stubs at work.

use oat_core::agg::SumI64;
use oat_core::policy::baseline::NeverLeaseSpec;
use oat_core::policy::rww::RwwSpec;
use oat_core::policy::{NodePolicy, PolicySpec};
use oat_core::tree::{NodeId, Tree};
use oat_sim::{Engine, Schedule};

use crate::table::Table;

/// A lease-based policy that grants eagerly and breaks at the first
/// opportunity — used to exercise the `(true, N, false, 1)` row.
#[derive(Clone, Copy, Debug)]
pub struct EagerBreakSpec;

/// Node state for [`EagerBreakSpec`] (stateless).
#[derive(Clone, Copy, Debug)]
pub struct EagerBreakNode;

impl PolicySpec for EagerBreakSpec {
    type Node = EagerBreakNode;
    fn build(&self, _degree: usize) -> EagerBreakNode {
        EagerBreakNode
    }
    fn name(&self) -> String {
        "EagerBreak".into()
    }
}

impl NodePolicy for EagerBreakNode {
    fn on_combine(&mut self, _tkn: &[usize]) {}
    fn on_probe_rcvd(&mut self, _w: usize, _tkn: &[usize]) {}
    fn on_response_rcvd(&mut self, _flag: bool, _w: usize) {}
    fn on_update_rcvd(&mut self, _w: usize, _lone_grant: bool) {}
    fn on_release_rcvd(&mut self, _w: usize) {}
    fn set_lease(&mut self, _w: usize) -> bool {
        true
    }
    fn break_lease(&mut self, _v: usize) -> bool {
        true
    }
    fn release_policy(&mut self, _v: usize, _uaw_len: usize) {}
}

fn n(i: u32) -> NodeId {
    NodeId(i)
}

struct Measured {
    state_before: bool,
    state_after: bool,
    cost: u64,
}

/// Measures `C(σ,u,v)` and `u.granted[v]` around a closure-driven
/// request on the pair tree with the given policy.
fn on_pair<S: PolicySpec>(
    spec: &S,
    setup: impl Fn(&mut Engine<S, SumI64>),
    act: impl Fn(&mut Engine<S, SumI64>),
) -> Measured {
    let tree = Tree::pair();
    let mut eng = Engine::new(tree.clone(), SumI64, spec, Schedule::Fifo, false);
    setup(&mut eng);
    eng.run_to_quiescence();
    let before_cost = eng.stats().pair_cost(&tree, n(0), n(1));
    let state_before = eng.node(n(0)).granted(0);
    act(&mut eng);
    eng.run_to_quiescence();
    Measured {
        state_before,
        state_after: eng.node(n(0)).granted(0),
        cost: eng.stats().pair_cost(&tree, n(0), n(1)) - before_cost,
    }
}

/// Runs E1 and returns the comparison table.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E1 / Figure 2 — per-edge cost table, measured on the mechanism",
        &[
            "granted",
            "request",
            "granted'",
            "paper cost",
            "measured",
            "driver",
            "ok",
        ],
    );
    t.note("ordered pair (u,v) = (n0,n1) on the two-node tree unless noted");

    let add = |state: bool,
               req: &str,
               next: bool,
               paper: u64,
               m: Measured,
               driver: &str,
               t: &mut Table| {
        assert_eq!(m.state_before, state, "scenario for ({state},{req}) broken");
        let ok = m.state_after == next && m.cost == paper;
        t.row(vec![
            state.to_string(),
            req.into(),
            next.to_string(),
            paper.to_string(),
            m.cost.to_string(),
            driver.into(),
            if ok { "yes".into() } else { "MISMATCH".into() },
        ]);
    };

    // (false, R, false, 2): NeverLease refuses the lease.
    let m = on_pair(
        &NeverLeaseSpec,
        |_| {},
        |e| {
            e.initiate_combine(n(1));
        },
    );
    add(false, "R", false, 2, m, "NeverLease: combine at n1", &mut t);

    // (false, R, true, 2): RWW sets the lease.
    let m = on_pair(
        &RwwSpec,
        |_| {},
        |e| {
            e.initiate_combine(n(1));
        },
    );
    add(false, "R", true, 2, m, "RWW: combine at n1", &mut t);

    // (false, W, false, 0).
    let m = on_pair(&RwwSpec, |_| {}, |e| e.initiate_write(n(0), 1));
    add(false, "W", false, 0, m, "RWW: write at n0", &mut t);

    // (false, N, false, 0): a request in σ(v,u) sends nothing here.
    let m = on_pair(&RwwSpec, |_| {}, |e| e.initiate_write(n(1), 1));
    add(false, "N", false, 0, m, "RWW: write at n1 (σ(v,u))", &mut t);

    // (true, R, true, 0).
    let m = on_pair(
        &RwwSpec,
        |e| {
            e.initiate_combine(n(1));
        },
        |e| {
            e.initiate_combine(n(1));
        },
    );
    add(true, "R", true, 0, m, "RWW: second combine at n1", &mut t);

    // (true, W, true, 1): first write after the combine.
    let m = on_pair(
        &RwwSpec,
        |e| {
            e.initiate_combine(n(1));
        },
        |e| e.initiate_write(n(0), 1),
    );
    add(true, "W", true, 1, m, "RWW: first write at n0", &mut t);

    // (true, W, false, 2): second consecutive write.
    let m = on_pair(
        &RwwSpec,
        |e| {
            e.initiate_combine(n(1));
            e.run_to_quiescence();
            e.initiate_write(n(0), 1);
        },
        |e| e.initiate_write(n(0), 2),
    );
    add(true, "W", false, 2, m, "RWW: second write at n0", &mut t);

    // (true, N, true, 0): a write on the far side leaves the lease alone.
    // Needs three nodes: pair (0,1) with the write at node 2 behind 1.
    {
        let tree = Tree::path(3);
        let mut eng: Engine<RwwSpec, SumI64> =
            Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
        eng.initiate_combine(n(1));
        eng.run_to_quiescence();
        // Pair (1,2): 1.granted[2]... we want a pair whose lease stays put
        // while a request of σ(v,u) executes. Use pair (0,1): granted
        // after the combine at 1; a combine at node 2 is in σ(1,0) — a
        // noop for (0,1).
        let gi = tree.nbr_index(n(0), n(1)).unwrap();
        let before_state = eng.node(n(0)).granted(gi);
        let before = eng.stats().pair_cost(&tree, n(0), n(1));
        eng.initiate_combine(n(2));
        eng.run_to_quiescence();
        let m = Measured {
            state_before: before_state,
            state_after: eng.node(n(0)).granted(gi),
            cost: eng.stats().pair_cost(&tree, n(0), n(1)) - before,
        };
        add(
            true,
            "N",
            true,
            0,
            m,
            "RWW path3: combine at n2 (σ(v,u))",
            &mut t,
        );
    }

    // (true, N, false, 1): an eager policy releases during a request of
    // σ(v,u). Path 0-1-2: combine at n1 takes leases from both sides;
    // a write at n2 triggers a release 1->0 — a noop for pair (0,1).
    {
        let tree = Tree::path(3);
        let mut eng: Engine<EagerBreakSpec, SumI64> =
            Engine::new(tree.clone(), SumI64, &EagerBreakSpec, Schedule::Fifo, false);
        eng.initiate_combine(n(1));
        eng.run_to_quiescence();
        let gi = tree.nbr_index(n(0), n(1)).unwrap();
        let before_state = eng.node(n(0)).granted(gi);
        let before = eng.stats().pair_cost(&tree, n(0), n(1));
        // Write at n2: in subtree(1,0), i.e. σ(1,0) — a noop for (0,1).
        eng.initiate_write(n(2), 5);
        eng.run_to_quiescence();
        let m = Measured {
            state_before: before_state,
            state_after: eng.node(n(0)).granted(gi),
            cost: eng.stats().pair_cost(&tree, n(0), n(1)) - before,
        };
        add(
            true,
            "N",
            false,
            1,
            m,
            "EagerBreak path3: write at n2 (σ(v,u))",
            &mut t,
        );
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_nine_rows_match_the_paper() {
        let tables = super::run();
        assert_eq!(tables[0].rows.len(), 9);
        for row in &tables[0].rows {
            assert_eq!(row[6], "yes", "row mismatch: {row:?}");
        }
    }
}
