//! **E8 — Lemma 3.12**: every lease-based algorithm is strictly
//! consistent in sequential executions.
//!
//! Policies × topologies × delivery schedules; every combine's return
//! value is checked against the last-write oracle. The violation column
//! must read 0 everywhere.

use oat_consistency::check_strict_sequential;
use oat_core::agg::SumI64;
use oat_core::policy::ab::AbSpec;
use oat_core::policy::baseline::{AlwaysLeaseSpec, NeverLeaseSpec};
use oat_core::policy::rww::RwwSpec;
use oat_core::policy::PolicySpec;
use oat_core::request::Request;
use oat_core::tree::Tree;
use oat_sim::{run_sequential, Schedule};

use crate::table::Table;

fn check<S: PolicySpec>(
    spec: &S,
    tree: &Tree,
    seq: &[Request<i64>],
    schedule: Schedule,
) -> (usize, usize) {
    let res = run_sequential(tree, SumI64, spec, schedule, seq, false);
    let combines = res.combines.len();
    let violations = check_strict_sequential(&SumI64, tree, seq, &res.combines).len();
    (combines, violations)
}

/// Runs E8.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E8 / Lemma 3.12 — strict consistency in sequential executions",
        &["policy", "topology", "schedule", "combines", "violations"],
    );
    let topologies = vec![
        ("path-24", Tree::path(24)),
        ("star-24", Tree::star(24)),
        ("random-24", oat_workloads::random_tree(24, 3)),
    ];
    for (tname, tree) in &topologies {
        let seq = oat_workloads::uniform(tree, 500, 0.5, 77);
        for (sname, sched) in [
            ("fifo", Schedule::Fifo),
            ("random-1", Schedule::Random(1)),
            ("random-2", Schedule::Random(2)),
        ] {
            let mut push = |policy: &str, c: usize, v: usize| {
                t.row(vec![
                    policy.into(),
                    (*tname).into(),
                    sname.into(),
                    c.to_string(),
                    v.to_string(),
                ]);
            };
            let (c, v) = check(&RwwSpec, tree, &seq, sched.clone());
            push("RWW", c, v);
            let (c, v) = check(&AbSpec::new(2, 3), tree, &seq, sched.clone());
            push("(2,3)-alg", c, v);
            let (c, v) = check(&AlwaysLeaseSpec, tree, &seq, sched.clone());
            push("AlwaysLease", c, v);
            let (c, v) = check(&NeverLeaseSpec, tree, &seq, sched);
            push("NeverLease", c, v);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn zero_violations_everywhere() {
        for table in super::run() {
            for row in &table.rows {
                assert_eq!(row[4], "0", "{row:?}");
            }
        }
    }
}
