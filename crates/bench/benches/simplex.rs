//! The in-repo simplex: the Figure-5 LP (the paper's actual program) and
//! synthetic LPs of growing size to characterise the solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oat_lp::figure5::{build_figure5_lp, solve_figure5};
use oat_lp::simplex::solve_min;

fn bench_figure5(c: &mut Criterion) {
    c.bench_function("simplex/figure5-build+solve", |b| {
        b.iter(|| solve_figure5().unwrap().c)
    });
    let lp = build_figure5_lp();
    c.bench_function("simplex/figure5-solve-only", |b| {
        b.iter(|| solve_min(&lp.objective, &lp.a, &lp.b).unwrap().objective)
    });
}

fn bench_synthetic(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex/synthetic");
    for (n, m) in [(5usize, 10usize), (10, 30), (20, 60)] {
        // A dense, feasible, bounded LP: min Σx s.t. random lower bounds
        // and a box.
        let mut seed = 42u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) + 0.1
        };
        let obj = vec![1.0; n];
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..m {
            let row: Vec<f64> = (0..n).map(|_| -rnd()).collect();
            a.push(row);
            b.push(-rnd() * 3.0); // Σ (coef · x) >= bound
        }
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            a.push(row);
            b.push(100.0);
        }
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}v-{m}c")),
            &(a, b, obj),
            |bch, (a, b, obj)| bch.iter(|| solve_min(obj, a, b).unwrap().objective),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_figure5, bench_synthetic);
criterion_main!(benches);
