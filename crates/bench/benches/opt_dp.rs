//! Offline machinery: the per-edge OPT dynamic program, the analytic RWW
//! replay, and the full-tree `C_OPT(σ)` computation that every
//! competitive experiment divides by.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oat_core::request::{sigma_prime_of, EdgeEvent};
use oat_core::tree::Tree;
use oat_offline::cost_model::RwwAutomaton;
use oat_offline::opt_dp::{opt_edge_cost, opt_total_cost};
use oat_offline::replay::rww_total_cost;

fn random_events(len: usize, seed: u64) -> Vec<EdgeEvent> {
    let mut s = seed;
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            if (s >> 35).is_multiple_of(2) {
                EdgeEvent::R
            } else {
                EdgeEvent::W
            }
        })
        .collect()
}

fn bench_edge_dp(c: &mut Criterion) {
    let mut g = c.benchmark_group("offline/edge-dp");
    for len in [100usize, 1_000, 10_000] {
        let events = sigma_prime_of(&random_events(len, 5));
        g.throughput(Throughput::Elements(events.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &events, |b, ev| {
            b.iter(|| opt_edge_cost(ev))
        });
    }
    g.finish();
}

fn bench_rww_automaton(c: &mut Criterion) {
    let mut g = c.benchmark_group("offline/rww-automaton");
    let events = random_events(10_000, 9);
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("replay-10k", |b| b.iter(|| RwwAutomaton::replay(&events)));
    g.finish();
}

fn bench_tree_totals(c: &mut Criterion) {
    let mut g = c.benchmark_group("offline/tree-totals");
    for n in [16usize, 64, 256] {
        let tree = Tree::kary(n, 2);
        let seq = oat_workloads::uniform(&tree, 500, 0.5, n as u64);
        g.bench_with_input(BenchmarkId::new("opt", n), &n, |b, _| {
            b.iter(|| opt_total_cost(&tree, &seq))
        });
        g.bench_with_input(BenchmarkId::new("rww-analytic", n), &n, |b, _| {
            b.iter(|| rww_total_cost(&tree, &seq))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_edge_dp,
    bench_rww_automaton,
    bench_tree_totals
);
criterion_main!(benches);
