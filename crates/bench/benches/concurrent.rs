//! Concurrent substrates: the seeded interleaving executor and the
//! one-thread-per-node runtime (thread spawn + channel traffic +
//! quiescence detection included in the measured unit).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oat_core::agg::SumI64;
use oat_core::policy::rww::RwwSpec;
use oat_core::tree::Tree;
use oat_sim::concurrent::run_concurrent;

fn bench_interleaved(c: &mut Criterion) {
    let mut g = c.benchmark_group("concurrent/interleaved");
    for n in [8usize, 16, 32] {
        let tree = Tree::kary(n, 2);
        let seq = oat_workloads::uniform(&tree, 200, 0.5, 9);
        g.throughput(Throughput::Elements(seq.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_concurrent(&tree, SumI64, &RwwSpec, &seq, 11, 0.8).total_msgs)
        });
    }
    g.finish();
}

fn bench_threaded(c: &mut Criterion) {
    let mut g = c.benchmark_group("concurrent/threaded");
    g.sample_size(10);
    for n in [4usize, 8] {
        let tree = Tree::kary(n, 2);
        let seq = oat_workloads::uniform(&tree, 100, 0.5, 13);
        g.throughput(Throughput::Elements(seq.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                oat_concurrent::run_threaded(&tree, SumI64, &RwwSpec, &seq, None).messages_delivered
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_interleaved, bench_threaded);
criterion_main!(benches);
