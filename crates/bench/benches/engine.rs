//! Engine throughput: sequential execution of a fixed workload across
//! tree sizes, shapes, and policies. The unit of work is one full
//! 200-request sequential run (including quiescence drains), so
//! `time / 200` approximates per-request latency of the simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oat_core::agg::SumI64;
use oat_core::policy::ab::AbSpec;
use oat_core::policy::baseline::NeverLeaseSpec;
use oat_core::policy::rww::RwwSpec;
use oat_core::tree::Tree;
use oat_sim::{run_sequential, Schedule};

fn bench_tree_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/rww-by-size");
    for n in [16usize, 64, 256] {
        let tree = Tree::kary(n, 2);
        let seq = oat_workloads::uniform(&tree, 200, 0.5, 42);
        g.throughput(Throughput::Elements(seq.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false).total_msgs()
            })
        });
    }
    g.finish();
}

fn bench_topologies(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/rww-by-topology");
    let topos = vec![
        ("path", Tree::path(64)),
        ("star", Tree::star(64)),
        ("binary", Tree::kary(64, 2)),
        ("random", oat_workloads::random_tree(64, 3)),
    ];
    for (name, tree) in topos {
        let seq = oat_workloads::uniform(&tree, 200, 0.5, 7);
        g.throughput(Throughput::Elements(seq.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false).total_msgs()
            })
        });
    }
    g.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/by-policy");
    let tree = Tree::kary(64, 2);
    let seq = oat_workloads::uniform(&tree, 200, 0.5, 11);
    g.throughput(Throughput::Elements(seq.len() as u64));
    g.bench_function("rww", |b| {
        b.iter(|| run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false).total_msgs())
    });
    g.bench_function("ab-2-3", |b| {
        b.iter(|| {
            run_sequential(
                &tree,
                SumI64,
                &AbSpec::new(2, 3),
                Schedule::Fifo,
                &seq,
                false,
            )
            .total_msgs()
        })
    });
    g.bench_function("never-lease", |b| {
        b.iter(|| {
            run_sequential(&tree, SumI64, &NeverLeaseSpec, Schedule::Fifo, &seq, false).total_msgs()
        })
    });
    g.finish();
}

fn bench_ghost_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/ghost-logs");
    let tree = Tree::kary(24, 2);
    let seq = oat_workloads::uniform(&tree, 100, 0.5, 13);
    g.bench_function("off", |b| {
        b.iter(|| run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false).total_msgs())
    });
    g.bench_function("on", |b| {
        b.iter(|| run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, true).total_msgs())
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads/generate");
    let tree = Tree::kary(256, 2);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("uniform-10k", |b| {
        b.iter(|| oat_workloads::uniform(&tree, 10_000, 0.5, 1).len())
    });
    g.bench_function("zipf-10k", |b| {
        b.iter(|| oat_workloads::zipf(&tree, 10_000, 0.5, 1.0, 1).len())
    });
    g.bench_function("random-tree-256", |b| {
        b.iter(|| oat_workloads::random_tree(256, 7).len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tree_sizes,
    bench_topologies,
    bench_policies,
    bench_ghost_overhead,
    bench_workload_generation
);
criterion_main!(benches);
