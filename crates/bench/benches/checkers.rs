//! Consistency checkers: the strict oracle over long sequential runs and
//! the causal checker (gather-write reconstruction + reachability +
//! pairwise order validation) over concurrent histories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oat_consistency::{check_causal, check_strict_sequential};
use oat_core::agg::SumI64;
use oat_core::policy::rww::RwwSpec;
use oat_core::tree::Tree;
use oat_sim::concurrent::run_concurrent;
use oat_sim::{run_sequential, Schedule};

fn bench_strict(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkers/strict");
    for len in [500usize, 5_000] {
        let tree = Tree::kary(32, 2);
        let seq = oat_workloads::uniform(&tree, len, 0.5, 3);
        let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| check_strict_sequential(&SumI64, &tree, &seq, &res.combines).len())
        });
    }
    g.finish();
}

fn bench_causal(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkers/causal");
    g.sample_size(20);
    for len in [60usize, 150] {
        let tree = Tree::kary(10, 3);
        let seq = oat_workloads::uniform(&tree, len, 0.5, 5);
        let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, 7, 0.8);
        let logs: Vec<_> = tree
            .nodes()
            .map(|u| res.engine.node(u).ghost().unwrap().log.clone())
            .collect();
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &logs, |b, logs| {
            b.iter(|| check_causal(&SumI64, logs).unwrap().checked_pairs)
        });
    }
    g.finish();
}

fn bench_sequential_consistency(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkers/sequential-consistency");
    g.sample_size(20);
    let tree = Tree::path(5);
    for len in [16usize, 24] {
        let seq = oat_workloads::uniform(&tree, len, 0.5, 5);
        let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, 7, 0.7);
        let logs: Vec<_> = tree
            .nodes()
            .map(|u| res.engine.node(u).ghost().unwrap().log.clone())
            .collect();
        let histories = oat_consistency::own_histories(&logs);
        g.bench_with_input(BenchmarkId::from_parameter(len), &histories, |b, h| {
            b.iter(|| oat_consistency::check_sequentially_consistent(&SumI64, h).is_some())
        });
    }
    g.finish();
}

fn bench_modelcheck(c: &mut Criterion) {
    use oat_core::request::Request;
    use oat_core::tree::NodeId;
    let mut g = c.benchmark_group("checkers/modelcheck");
    g.sample_size(10);
    let tree = Tree::path(3);
    let script = vec![
        Request::combine(NodeId(0)),
        Request::combine(NodeId(2)),
        Request::write(NodeId(1), 1),
        Request::write(NodeId(0), 2),
    ];
    g.bench_function("path3-4req", |b| {
        b.iter(|| {
            oat_modelcheck::check_all_interleavings(
                &tree,
                SumI64,
                &RwwSpec,
                &script,
                oat_modelcheck::Limits::default(),
            )
            .unwrap()
            .distinct_states
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_strict,
    bench_causal,
    bench_sequential_consistency,
    bench_modelcheck
);
criterion_main!(benches);
