//! Heterogeneous multi-attribute aggregation: a *different* policy per
//! attribute.
//!
//! SDIMS's headline API lets applications pick update-propagation
//! strategies per attribute — e.g. push-all for a tiny, hot
//! configuration flag; pull for a bulk debug counter; adaptive leases
//! for everything else. [`MixedMultiSystem`] provides exactly that: each
//! attribute names a [`PolicyKind`] when first registered, and runs its
//! own engine under it. (The homogeneous [`crate::MultiSystem`] shows
//! that with RWW the choice can be left to adaptation; this type exists
//! for the cases where the operator *knows*.)

use oat_core::agg::AggOp;
use oat_core::mechanism::CombineOutcome;
use oat_core::policy::ab::AbSpec;
use oat_core::policy::baseline::{AlwaysLeaseSpec, NeverLeaseSpec};
use oat_core::policy::random::RandomBreakSpec;
use oat_core::policy::rww::RwwSpec;
use oat_core::tree::{NodeId, Tree};
use oat_sim::{Engine, Schedule};
use std::collections::HashMap;

/// The policy menu for per-attribute selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's adaptive policy (Figure 3).
    Rww,
    /// Generalised `(a, b)` policy.
    Ab(u32, u32),
    /// Push-all (Astrolabe-like), started with all leases pre-warmed.
    AlwaysLease,
    /// Pull-all (MDS-2-like).
    NeverLease,
    /// Randomized breaking with expected tolerance `b` and a seed.
    RandomBreak(u32, u64),
}

/// One engine, dispatched over the policy menu.
enum DynEngine<A: AggOp> {
    Rww(Engine<RwwSpec, A>),
    Ab(Engine<AbSpec, A>),
    Always(Engine<AlwaysLeaseSpec, A>),
    Never(Engine<NeverLeaseSpec, A>),
    Random(Engine<RandomBreakSpec, A>),
}

macro_rules! dispatch {
    ($self:expr, $e:ident => $body:expr) => {
        match $self {
            DynEngine::Rww($e) => $body,
            DynEngine::Ab($e) => $body,
            DynEngine::Always($e) => $body,
            DynEngine::Never($e) => $body,
            DynEngine::Random($e) => $body,
        }
    };
}

impl<A: AggOp> DynEngine<A> {
    fn new(kind: PolicyKind, tree: &Tree, op: &A) -> Self {
        match kind {
            PolicyKind::Rww => DynEngine::Rww(Engine::new(
                tree.clone(),
                op.clone(),
                &RwwSpec,
                Schedule::Fifo,
                false,
            )),
            PolicyKind::Ab(a, b) => DynEngine::Ab(Engine::new(
                tree.clone(),
                op.clone(),
                &AbSpec::new(a, b),
                Schedule::Fifo,
                false,
            )),
            PolicyKind::AlwaysLease => {
                let mut eng = Engine::new(
                    tree.clone(),
                    op.clone(),
                    &AlwaysLeaseSpec,
                    Schedule::Fifo,
                    false,
                );
                eng.prewarm_leases();
                DynEngine::Always(eng)
            }
            PolicyKind::NeverLease => DynEngine::Never(Engine::new(
                tree.clone(),
                op.clone(),
                &NeverLeaseSpec,
                Schedule::Fifo,
                false,
            )),
            PolicyKind::RandomBreak(b, seed) => DynEngine::Random(Engine::new(
                tree.clone(),
                op.clone(),
                &RandomBreakSpec::new(b, seed),
                Schedule::Fifo,
                false,
            )),
        }
    }

    fn write(&mut self, node: NodeId, value: A::Value) {
        dispatch!(self, e => {
            e.initiate_write(node, value);
            let done = e.run_to_quiescence();
            debug_assert!(done.is_empty());
        })
    }

    fn read(&mut self, node: NodeId) -> A::Value {
        dispatch!(self, e => {
            match e.initiate_combine(node) {
                CombineOutcome::Done(v) => v,
                CombineOutcome::Pending => e
                    .run_to_quiescence()
                    .into_iter()
                    .find(|(n, _)| *n == node)
                    .expect("combine completes sequentially")
                    .1,
                CombineOutcome::Coalesced => unreachable!("sequential facade"),
            }
        })
    }

    fn messages(&self) -> u64 {
        dispatch!(self, e => e.stats().total())
    }
}

/// A multi-attribute system with a per-attribute policy choice.
pub struct MixedMultiSystem<A: AggOp> {
    tree: Tree,
    op: A,
    default_kind: PolicyKind,
    names: Vec<(String, PolicyKind)>,
    index: HashMap<String, usize>,
    engines: Vec<DynEngine<A>>,
}

impl<A: AggOp> MixedMultiSystem<A> {
    /// New system; attributes not explicitly registered use
    /// `default_kind`.
    pub fn new(tree: Tree, op: A, default_kind: PolicyKind) -> Self {
        MixedMultiSystem {
            tree,
            op,
            default_kind,
            names: Vec::new(),
            index: HashMap::new(),
            engines: Vec::new(),
        }
    }

    /// Registers `attr` with an explicit policy. Panics if the attribute
    /// was already created (policies are fixed at creation, like SDIMS
    /// install-time knobs).
    pub fn register(&mut self, attr: &str, kind: PolicyKind) {
        assert!(
            !self.index.contains_key(attr),
            "attribute `{attr}` already exists"
        );
        self.create(attr, kind);
    }

    fn create(&mut self, attr: &str, kind: PolicyKind) -> usize {
        let i = self.engines.len();
        self.engines
            .push(DynEngine::new(kind, &self.tree, &self.op));
        self.names.push((attr.to_string(), kind));
        self.index.insert(attr.to_string(), i);
        i
    }

    fn attr_index(&mut self, attr: &str) -> usize {
        match self.index.get(attr) {
            Some(&i) => i,
            None => self.create(attr, self.default_kind),
        }
    }

    /// Writes `value` at `node` under `attr`.
    pub fn write(&mut self, node: NodeId, attr: &str, value: A::Value) {
        let i = self.attr_index(attr);
        self.engines[i].write(node, value);
    }

    /// Reads the aggregate of `attr` at `node`.
    pub fn read(&mut self, node: NodeId, attr: &str) -> A::Value {
        let i = self.attr_index(attr);
        self.engines[i].read(node)
    }

    /// `(attribute, policy)` pairs in creation order.
    pub fn attributes(&self) -> &[(String, PolicyKind)] {
        &self.names
    }

    /// Messages spent on `attr` so far.
    pub fn messages_for(&self, attr: &str) -> u64 {
        self.index
            .get(attr)
            .map(|&i| self.engines[i].messages())
            .unwrap_or(0)
    }

    /// Total messages across all attributes.
    pub fn messages_total(&self) -> u64 {
        self.engines.iter().map(DynEngine::messages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn per_attribute_policies_behave_differently() {
        let mut sys = MixedMultiSystem::new(Tree::star(8), SumI64, PolicyKind::Rww);
        sys.register("config", PolicyKind::AlwaysLease);
        sys.register("debug", PolicyKind::NeverLease);

        // config: prewarmed push — reads free from the start.
        assert_eq!(sys.read(n(3), "config"), 0);
        assert_eq!(sys.messages_for("config"), 0);
        // a write pushes to everyone.
        sys.write(n(1), "config", 7);
        assert_eq!(sys.messages_for("config"), 7, "pushed along the tree");
        assert_eq!(sys.read(n(5), "config"), 7);
        assert_eq!(sys.messages_for("config"), 7, "read still free");

        // debug: pull — writes free, each read floods.
        sys.write(n(2), "debug", 100);
        assert_eq!(sys.messages_for("debug"), 0);
        assert_eq!(sys.read(n(3), "debug"), 100);
        assert_eq!(sys.messages_for("debug"), 14, "2·(n−1) flood");

        // default (RWW) kicks in for unregistered attributes.
        assert_eq!(sys.read(n(4), "other"), 0);
        assert_eq!(sys.attributes().len(), 3);
        assert_eq!(sys.attributes()[2].1, PolicyKind::Rww);
    }

    #[test]
    fn totals_partition() {
        let mut sys = MixedMultiSystem::new(Tree::path(4), SumI64, PolicyKind::Rww);
        sys.register("a", PolicyKind::Ab(1, 3));
        sys.read(n(0), "a");
        sys.read(n(3), "b");
        assert_eq!(
            sys.messages_total(),
            sys.messages_for("a") + sys.messages_for("b")
        );
    }

    #[test]
    #[should_panic]
    fn double_registration_rejected() {
        let mut sys = MixedMultiSystem::new(Tree::pair(), SumI64, PolicyKind::Rww);
        sys.register("a", PolicyKind::Rww);
        sys.register("a", PolicyKind::NeverLease);
    }

    #[test]
    fn randomized_policy_attribute_is_consistent() {
        let mut sys = MixedMultiSystem::new(Tree::path(5), SumI64, PolicyKind::Rww);
        sys.register("x", PolicyKind::RandomBreak(2, 7));
        let mut oracle = 0;
        for i in 0..30 {
            sys.write(n(i % 5), "x", i as i64);
            // Track the oracle: last write per node.
            oracle = {
                let mut vals = [0i64; 5];
                for j in 0..=i {
                    vals[(j % 5) as usize] = j as i64;
                }
                vals.iter().sum()
            };
            assert_eq!(sys.read(n((i + 2) % 5), "x"), oracle);
        }
        let _ = oracle;
    }
}
