//! # oat-multi — multi-attribute aggregation (SDIMS-style)
//!
//! SDIMS (the paper's primary motivating framework) aggregates many
//! named attributes over the same tree, and its headline feature is
//! per-attribute control of update-propagation aggressiveness. With the
//! lease mechanism that control becomes *automatic*: run one independent
//! instance of the Figure-1 automaton per attribute, and each
//! attribute's lease graph adapts to that attribute's own read/write
//! mix. A read-heavy `"cpu-load"` attribute converges to push-on-write;
//! a write-heavy `"disk-io"` attribute stays pull-on-read — on the same
//! tree, simultaneously, with no tuning knobs.
//!
//! [`MultiSystem`] manages the per-attribute engines lazily (an
//! attribute costs nothing until first touched), shares one topology,
//! and reports per-attribute and total message costs. Because every
//! attribute runs the unmodified mechanism, all of the paper's
//! guarantees hold per attribute: strict consistency in sequential
//! executions, causal consistency in concurrent ones, and the Theorem-1
//! competitive bound for RWW.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mixed;
pub use mixed::{MixedMultiSystem, PolicyKind};

use std::collections::HashMap;

use oat_core::agg::AggOp;
use oat_core::mechanism::CombineOutcome;
use oat_core::policy::PolicySpec;
use oat_core::tree::{NodeId, Tree};
use oat_sim::{Engine, Schedule};

/// A named-attribute aggregation system: one lease-managed aggregation
/// instance per attribute over a shared tree.
///
/// ```
/// use oat_core::{agg::SumI64, policy::rww::RwwSpec, tree::{NodeId, Tree}};
/// use oat_multi::MultiSystem;
///
/// let mut sys = MultiSystem::new(Tree::star(4), SumI64, RwwSpec);
/// sys.write(NodeId(1), "cpu", 75);
/// sys.write(NodeId(2), "cpu", 30);
/// sys.write(NodeId(1), "alerts", 1);
/// assert_eq!(sys.read(NodeId(3), "cpu"), 105);
/// assert_eq!(sys.read(NodeId(3), "alerts"), 1);
/// assert_eq!(sys.read(NodeId(3), "untouched"), 0);
/// ```
pub struct MultiSystem<S: PolicySpec, A: AggOp> {
    tree: Tree,
    op: A,
    spec: S,
    names: Vec<String>,
    index: HashMap<String, usize>,
    engines: Vec<Engine<S, A>>,
}

impl<S: PolicySpec, A: AggOp> MultiSystem<S, A> {
    /// New system over `tree`; attributes are created on first use.
    pub fn new(tree: Tree, op: A, spec: S) -> Self {
        MultiSystem {
            tree,
            op,
            spec,
            names: Vec::new(),
            index: HashMap::new(),
            engines: Vec::new(),
        }
    }

    fn attr_index(&mut self, attr: &str) -> usize {
        if let Some(&i) = self.index.get(attr) {
            return i;
        }
        let i = self.engines.len();
        self.engines.push(Engine::new(
            self.tree.clone(),
            self.op.clone(),
            &self.spec,
            Schedule::Fifo,
            false,
        ));
        self.names.push(attr.to_string());
        self.index.insert(attr.to_string(), i);
        i
    }

    /// Writes `value` as `node`'s local value of `attr` (sequential
    /// semantics: runs to quiescence).
    pub fn write(&mut self, node: NodeId, attr: &str, value: A::Value) {
        let i = self.attr_index(attr);
        let eng = &mut self.engines[i];
        eng.initiate_write(node, value);
        let done = eng.run_to_quiescence();
        debug_assert!(done.is_empty());
    }

    /// Reads the global aggregate of `attr` at `node`.
    pub fn read(&mut self, node: NodeId, attr: &str) -> A::Value {
        let i = self.attr_index(attr);
        let eng = &mut self.engines[i];
        match eng.initiate_combine(node) {
            CombineOutcome::Done(v) => v,
            CombineOutcome::Pending => {
                eng.run_to_quiescence()
                    .into_iter()
                    .find(|(n, _)| *n == node)
                    .expect("combine completes in its sequential execution")
                    .1
            }
            CombineOutcome::Coalesced => unreachable!("sequential facade"),
        }
    }

    /// Reads every known attribute at `node`, in creation order.
    pub fn read_all(&mut self, node: NodeId) -> Vec<(String, A::Value)> {
        let names = self.names.clone();
        names
            .into_iter()
            .map(|name| {
                let v = self.read(node, &name);
                (name, v)
            })
            .collect()
    }

    /// Attribute names in creation order.
    pub fn attributes(&self) -> &[String] {
        &self.names
    }

    /// Messages spent on one attribute so far (0 for unknown names —
    /// untouched attributes cost nothing).
    pub fn messages_for(&self, attr: &str) -> u64 {
        self.index
            .get(attr)
            .map(|&i| self.engines[i].stats().total())
            .unwrap_or(0)
    }

    /// Total messages across all attributes.
    pub fn messages_total(&self) -> u64 {
        self.engines.iter().map(|e| e.stats().total()).sum()
    }

    /// The per-attribute engine, for invariant inspection in tests.
    pub fn engine(&self, attr: &str) -> Option<&Engine<S, A>> {
        self.index.get(attr).map(|&i| &self.engines[i])
    }

    /// The shared topology.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;
    use oat_core::policy::rww::RwwSpec;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn attributes_are_independent() {
        let mut sys = MultiSystem::new(Tree::star(6), SumI64, RwwSpec);
        sys.write(n(1), "cpu", 10);
        sys.write(n(2), "mem", 100);
        assert_eq!(sys.read(n(3), "cpu"), 10);
        assert_eq!(sys.read(n(3), "mem"), 100);
        assert_eq!(sys.read(n(3), "disk"), 0, "untouched attribute is identity");
        assert_eq!(sys.attributes(), &["cpu", "mem", "disk"]);
    }

    #[test]
    fn per_attribute_lease_adaptation() {
        // "cpu" is read-heavy at node 0; "disk" is write-heavy at node 4.
        // After warm-up, cpu reads are free (leases held) while disk
        // writes are free (leases broken) — on the same tree.
        let mut sys = MultiSystem::new(Tree::path(5), SumI64, RwwSpec);
        for i in 0..10 {
            sys.read(n(0), "cpu");
            sys.write(n(4), "cpu", i);
            sys.read(n(0), "cpu");
            sys.write(n(0), "disk", i);
            sys.write(n(0), "disk", i + 1);
        }
        // cpu: lease held toward node 0 => a read now costs nothing.
        let before = sys.messages_for("cpu");
        sys.read(n(0), "cpu");
        assert_eq!(sys.messages_for("cpu"), before, "cpu read lease-local");
        // disk: leases broken by consecutive writes => a write is silent.
        let before = sys.messages_for("disk");
        sys.write(n(0), "disk", 99);
        assert_eq!(sys.messages_for("disk"), before, "disk write silent");
    }

    #[test]
    fn message_accounting_partitions_by_attribute() {
        let mut sys = MultiSystem::new(Tree::path(4), SumI64, RwwSpec);
        sys.read(n(0), "a");
        sys.read(n(3), "b");
        assert_eq!(
            sys.messages_total(),
            sys.messages_for("a") + sys.messages_for("b")
        );
        assert!(sys.messages_for("a") > 0);
        assert_eq!(sys.messages_for("zzz"), 0);
    }

    #[test]
    fn read_all_returns_every_attribute() {
        let mut sys = MultiSystem::new(Tree::pair(), SumI64, RwwSpec);
        sys.write(n(0), "x", 1);
        sys.write(n(1), "y", 2);
        let all = sys.read_all(n(0));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], ("x".to_string(), 1));
        assert_eq!(all[1], ("y".to_string(), 2));
    }
}
