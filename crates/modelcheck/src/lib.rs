//! # oat-modelcheck — exhaustive interleaving exploration
//!
//! The concurrent experiments elsewhere in this repository *sample*
//! schedules (seeded interleavings, real threads). This crate instead
//! **enumerates every interleaving** of a small concurrent execution:
//! at each global state the scheduler may initiate the next scripted
//! request or deliver the head of any non-empty channel, and the
//! explorer follows *all* of those choices, deduplicating identical
//! global states (full mechanism + policy + ghost + channel contents).
//!
//! Verified over the entire reachable state space:
//!
//! * **progress** — exploration always reaches terminal states (all
//!   requests initiated, network quiescent); no deadlocks, no unbounded
//!   growth within the state-count budget,
//! * **completion** — in every terminal state, every scripted combine
//!   has completed,
//! * **structural invariants** — Lemmas 3.1/3.2/3.4 and the `aval`
//!   ground-truth check hold in every *quiescent* reachable state,
//! * **causal consistency** (Theorem 4) — the ghost logs of every
//!   terminal state pass `oat_consistency::check_causal`.
//!
//! This is the strongest evidence the repository offers for the
//! Section-5 claims: on the checked instances they hold for **all**
//! schedules, not just sampled ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use oat_consistency::check_causal;
use oat_core::agg::AggOp;
use oat_core::mechanism::CombineOutcome;
use oat_core::policy::PolicySpec;
use oat_core::request::{ReqOp, Request};
use oat_core::tree::Tree;
use oat_sim::{Engine, Schedule};

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum distinct states to visit before giving up.
    pub max_states: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 2_000_000,
        }
    }
}

/// Why a check failed.
#[derive(Debug)]
pub enum CheckError {
    /// The state space exceeded [`Limits::max_states`].
    StateSpaceTooLarge {
        /// The configured bound.
        limit: u64,
    },
    /// A quiescent state violated a structural invariant.
    InvariantViolation {
        /// Description from the invariant checker.
        description: String,
    },
    /// A terminal state left a combine incomplete.
    IncompleteCombine {
        /// Combines completed in that terminal state.
        completed: usize,
        /// Combines the script contains.
        expected: usize,
    },
    /// A terminal state's ghost history is not causally consistent.
    CausalViolation {
        /// Debug form of the checker's verdict.
        description: String,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::StateSpaceTooLarge { limit } => {
                write!(f, "state space exceeds {limit} states")
            }
            CheckError::InvariantViolation { description } => {
                write!(f, "invariant violation: {description}")
            }
            CheckError::IncompleteCombine {
                completed,
                expected,
            } => write!(
                f,
                "terminal state completed {completed}/{expected} combines"
            ),
            CheckError::CausalViolation { description } => {
                write!(f, "causal violation: {description}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Statistics from a successful exhaustive check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Distinct global states visited.
    pub distinct_states: u64,
    /// Scheduler transitions explored (edges of the state graph).
    pub transitions: u64,
    /// Distinct terminal states (all initiated + quiescent).
    pub terminal_states: u64,
    /// Distinct quiescent intermediate states where invariants were
    /// checked.
    pub quiescent_states: u64,
    /// Maximum number of messages simultaneously in flight.
    pub max_in_flight: usize,
}

/// One explorer node: the engine plus script progress.
struct State<S: PolicySpec, A: AggOp> {
    engine: Engine<S, A>,
    next_request: usize,
    combines_done: usize,
    /// Outstanding (pending or coalesced) local combines per node; one
    /// completion event resolves all of a node's outstanding combines.
    outstanding: Vec<usize>,
}

fn digest<S, A>(st: &State<S, A>) -> u128
where
    S: PolicySpec,
    A: AggOp,
    S::Node: Hash,
    A::Value: Hash,
{
    // Two independent 64-bit hashes → one 128-bit digest; collision
    // probability over millions of states is negligible.
    let mut h1 = std::hash::DefaultHasher::new();
    st.engine.hash_state(&mut h1);
    st.next_request.hash(&mut h1);
    st.combines_done.hash(&mut h1);
    st.outstanding.hash(&mut h1);
    let lo = h1.finish();
    let mut h2 = std::hash::DefaultHasher::new();
    0xa5a5_5a5a_u64.hash(&mut h2);
    lo.hash(&mut h2);
    st.engine.hash_state(&mut h2);
    ((h2.finish() as u128) << 64) | lo as u128
}

/// Exhaustively explores every interleaving of `script` on `tree` and
/// checks progress, completion, structural invariants, and causal
/// consistency everywhere.
///
/// Keep instances small: state spaces grow exponentially with the number
/// of concurrently outstanding messages. Trees of 2–4 nodes with 4–8
/// requests explore in well under a second; the default limit of 2M
/// states caps runaways.
///
/// ```
/// use oat_core::{agg::SumI64, policy::rww::RwwSpec, request::Request, tree::{NodeId, Tree}};
/// use oat_modelcheck::{check_all_interleavings, Limits};
///
/// let script = vec![
///     Request::combine(NodeId(1)),
///     Request::write(NodeId(0), 5),
///     Request::combine(NodeId(1)),
/// ];
/// let report = check_all_interleavings(
///     &Tree::pair(), SumI64, &RwwSpec, &script, Limits::default(),
/// ).expect("every interleaving is clean");
/// assert!(report.terminal_states >= 1);
/// ```
pub fn check_all_interleavings<S, A>(
    tree: &Tree,
    op: A,
    spec: &S,
    script: &[Request<A::Value>],
    limits: Limits,
) -> Result<CheckReport, CheckError>
where
    S: PolicySpec,
    A: AggOp,
    S::Node: Clone + Hash,
    A::Value: Hash,
{
    let total_combines = script.iter().filter(|q| q.op.is_combine()).count();
    let root = State {
        engine: Engine::new(tree.clone(), op.clone(), spec, Schedule::Fifo, true),
        next_request: 0,
        combines_done: 0,
        outstanding: vec![0; tree.len()],
    };

    let mut seen: HashSet<u128> = HashSet::new();
    seen.insert(digest(&root));
    let mut stack: Vec<State<S, A>> = vec![root];
    let mut report = CheckReport {
        distinct_states: 1,
        ..CheckReport::default()
    };

    while let Some(state) = stack.pop() {
        if report.distinct_states > limits.max_states {
            return Err(CheckError::StateSpaceTooLarge {
                limit: limits.max_states,
            });
        }
        report.max_in_flight = report.max_in_flight.max(state.engine.in_flight());

        let can_initiate = state.next_request < script.len();
        let channels = state.engine.nonempty_channels();

        if state.engine.is_quiescent() {
            // Every quiescent reachable state must satisfy the
            // structural lemmas.
            oat_sim::invariants::check_all(&state.engine, &op)
                .map_err(|description| CheckError::InvariantViolation { description })?;
            report.quiescent_states += 1;
        }

        if !can_initiate && channels.is_empty() {
            // Terminal: all requests initiated, network quiescent.
            report.terminal_states += 1;
            if state.combines_done != total_combines {
                return Err(CheckError::IncompleteCombine {
                    completed: state.combines_done,
                    expected: total_combines,
                });
            }
            let logs: Vec<_> = tree
                .nodes()
                .map(|u| state.engine.node(u).ghost().expect("ghost on").log.clone())
                .collect();
            check_causal(&op, &logs).map_err(|v| CheckError::CausalViolation {
                description: format!("{v:?}"),
            })?;
            continue;
        }

        // Branch 1: initiate the next scripted request.
        if can_initiate {
            let mut next = State {
                engine: state.engine.clone(),
                next_request: state.next_request + 1,
                combines_done: state.combines_done,
                outstanding: state.outstanding.clone(),
            };
            let q = &script[state.next_request];
            match &q.op {
                ReqOp::Write(arg) => next.engine.initiate_write(q.node, arg.clone()),
                ReqOp::Combine => match next.engine.initiate_combine(q.node) {
                    CombineOutcome::Done(_) => next.combines_done += 1,
                    CombineOutcome::Pending | CombineOutcome::Coalesced => {
                        next.outstanding[q.node.idx()] += 1;
                    }
                },
            }
            report.transitions += 1;
            if seen.insert(digest(&next)) {
                report.distinct_states += 1;
                stack.push(next);
            }
        }

        // Branch 2..k: deliver the head of each non-empty channel.
        for &(from, to) in &channels {
            let mut next = State {
                engine: state.engine.clone(),
                next_request: state.next_request,
                combines_done: state.combines_done,
                outstanding: state.outstanding.clone(),
            };
            let d = next
                .engine
                .deliver_from(from, to)
                .expect("channel was non-empty");
            if d.completed.is_some() {
                // One completion event resolves every coalesced local
                // combine outstanding at that node.
                next.combines_done += next.outstanding[d.node.idx()];
                next.outstanding[d.node.idx()] = 0;
            }
            report.transitions += 1;
            if seen.insert(digest(&next)) {
                report.distinct_states += 1;
                stack.push(next);
            }
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;
    use oat_core::policy::rww::RwwSpec;
    use oat_core::tree::NodeId;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A random short script on a tree with `nn` nodes.
    fn script(nn: u32, max_len: usize) -> impl Strategy<Value = Vec<Request<i64>>> {
        proptest::collection::vec(
            (0..nn, any::<bool>(), -20i64..20).prop_map(|(node, w, v)| {
                if w {
                    Request::write(NodeId(node), v)
                } else {
                    Request::combine(NodeId(node))
                }
            }),
            1..=max_len,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_pair_scripts_verify_exhaustively(s in script(2, 6)) {
            check_all_interleavings(
                &Tree::pair(),
                SumI64,
                &RwwSpec,
                &s,
                Limits { max_states: 400_000 },
            )
            .unwrap_or_else(|e| panic!("script {s:?}: {e}"));
        }

        #[test]
        fn random_path3_scripts_verify_exhaustively(s in script(3, 5)) {
            check_all_interleavings(
                &Tree::path(3),
                SumI64,
                &RwwSpec,
                &s,
                Limits { max_states: 400_000 },
            )
            .unwrap_or_else(|e| panic!("script {s:?}: {e}"));
        }
    }

    #[test]
    fn pair_tree_full_space_is_clean() {
        let tree = Tree::pair();
        let script = vec![
            Request::write(n(0), 5),
            Request::combine(n(1)),
            Request::write(n(0), 7),
            Request::combine(n(1)),
        ];
        let rep = check_all_interleavings(&tree, SumI64, &RwwSpec, &script, Limits::default())
            .expect("all interleavings clean");
        assert!(rep.distinct_states > 10, "{rep:?}");
        assert!(rep.terminal_states >= 1);
        assert!(rep.quiescent_states >= 1);
    }

    #[test]
    fn overlapping_combines_coalesce_correctly_in_all_orders() {
        let tree = Tree::path(3);
        let script = vec![
            Request::combine(n(0)),
            Request::combine(n(0)),
            Request::write(n(2), 3),
        ];
        let rep = check_all_interleavings(&tree, SumI64, &RwwSpec, &script, Limits::default())
            .expect("clean");
        assert!(rep.max_in_flight >= 2, "{rep:?}");
    }

    #[test]
    fn state_limit_is_enforced() {
        let tree = Tree::path(3);
        let script: Vec<_> = (0..12)
            .flat_map(|i| {
                [
                    Request::combine(n(i % 3)),
                    Request::write(n((i + 1) % 3), i as i64),
                ]
            })
            .collect();
        let err =
            check_all_interleavings(&tree, SumI64, &RwwSpec, &script, Limits { max_states: 500 })
                .unwrap_err();
        assert!(matches!(err, CheckError::StateSpaceTooLarge { .. }));
    }
}
