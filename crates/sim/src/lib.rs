//! # oat-sim — deterministic message-passing simulator
//!
//! Drives the Figure-1 node automata of `oat-core` over a tree network
//! with reliable FIFO channels (one queue per directed edge), exactly the
//! network model of Section 2.
//!
//! * [`engine`] — the network: nodes, channels, message routing, and
//!   per-directed-edge / per-kind message accounting,
//! * [`schedule`] — delivery-order strategies (global FIFO, seeded
//!   random); per-channel FIFO order is preserved under every strategy,
//! * [`sequential`] — the paper's *sequential execution* semantics: each
//!   request is initiated in a quiescent state and runs to quiescence
//!   before the next (Section 2),
//! * [`concurrent`] — interleaved executions: request initiations and
//!   message deliveries are interleaved by a seeded scheduler; used by the
//!   Section-5 causal-consistency experiments,
//! * [`eventloop`] — a generic deterministic timed event queue with
//!   schedule-controlled tie-breaking; the substrate other problem
//!   families (e.g. `oat-mlap`) run on,
//! * [`invariants`] — executable forms of Lemmas 3.1, 3.2, 3.4, the value
//!   invariants `I1`–`I3`, and RWW's `I4` (Lemma 4.2), checkable in any
//!   quiescent state,
//! * [`trace`] — replayable, printable event logs of executions,
//! * [`viz`] — ASCII rendering of trees and lease graphs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod engine;
pub mod eventloop;
pub mod invariants;
pub mod schedule;
pub mod sequential;
pub mod stats;
pub mod trace;
pub mod viz;

pub use engine::Engine;
pub use schedule::Schedule;
pub use sequential::{run_sequential, SeqResult};
pub use stats::MsgStats;
