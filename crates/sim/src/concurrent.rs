//! Interleaved (concurrent) executions.
//!
//! Section 5 drops the quiescence requirement: a new request may be
//! initiated while others are still executing. This executor interleaves
//! request initiations with message deliveries under a seeded scheduler,
//! producing the ghost logs the causal-consistency checker consumes.
//!
//! Combine semantics under concurrency follow the mechanism: a combine
//! initiated while the node is already in `pndg` *coalesces* with the
//! in-flight fan-out and completes together with it, returning the same
//! value.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use oat_core::agg::AggOp;
use oat_core::mechanism::CombineOutcome;
use oat_core::policy::PolicySpec;
use oat_core::request::{ReqOp, Request};
use oat_core::tree::{NodeId, Tree};

use crate::engine::Engine;
use crate::schedule::Schedule;

/// A completed request in completion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Completion<V> {
    /// A write completed (writes complete at initiation).
    Write {
        /// Index in the input sequence.
        seq_index: usize,
        /// Requesting node.
        node: NodeId,
        /// Written value.
        arg: V,
    },
    /// A combine completed with the returned global aggregate.
    Combine {
        /// Index in the input sequence.
        seq_index: usize,
        /// Requesting node.
        node: NodeId,
        /// Returned value.
        value: V,
        /// Oracle value (fold of all current local values) at completion —
        /// used to *demonstrate* that strict consistency can fail
        /// concurrently, not to assert it.
        oracle: V,
    },
}

/// Result of a concurrent run.
pub struct ConcurrentResult<S: PolicySpec, A: AggOp> {
    /// Engine in its final (drained) state; ghost logs live in its nodes.
    pub engine: Engine<S, A>,
    /// Completions in completion order.
    pub completions: Vec<Completion<A::Value>>,
    /// Total messages exchanged.
    pub total_msgs: u64,
}

impl<S: PolicySpec, A: AggOp> ConcurrentResult<S, A> {
    /// Number of combine completions whose value differed from the oracle
    /// at completion time — strict-consistency misses (expected to be
    /// possible under concurrency; Section 5 motivates causal consistency
    /// precisely because of them).
    pub fn strict_misses(&self) -> usize {
        self.completions
            .iter()
            .filter(|c| match c {
                Completion::Combine { value, oracle, .. } => value != oracle,
                Completion::Write { .. } => false,
            })
            .count()
    }
}

/// Runs `seq` with initiations and deliveries interleaved by `seed`.
///
/// `aggressiveness ∈ (0, 1]` is the probability of initiating the next
/// request (when one remains) instead of delivering a pending message;
/// higher values produce more overlap.
pub fn run_concurrent<S: PolicySpec, A: AggOp>(
    tree: &Tree,
    op: A,
    spec: &S,
    seq: &[Request<A::Value>],
    seed: u64,
    aggressiveness: f64,
) -> ConcurrentResult<S, A> {
    assert!(
        aggressiveness > 0.0 && aggressiveness <= 1.0,
        "aggressiveness must be in (0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Ghost logs on; delivery order randomised from the same seed family.
    let mut engine = Engine::new(
        tree.clone(),
        op,
        spec,
        Schedule::Random(seed.wrapping_add(1)),
        true,
    );

    let mut completions = Vec::new();
    // Outstanding local combines per node: (seq indices awaiting this
    // node's in-flight fan-out).
    let mut outstanding: Vec<Vec<usize>> = vec![Vec::new(); tree.len()];
    let mut next = 0usize;
    let mut steps = 0u64;
    let step_limit = (seq.len() as u64 + 10) * (tree.len() as u64 + 10) * 50 + 10_000;

    loop {
        steps += 1;
        assert!(
            steps < step_limit,
            "concurrent run failed to converge (mechanism bug?)"
        );
        let can_initiate = next < seq.len();
        let can_deliver = !engine.is_quiescent();
        if !can_initiate && !can_deliver {
            break;
        }
        let initiate = can_initiate && (!can_deliver || rng.gen_bool(aggressiveness));
        if initiate {
            let q = &seq[next];
            match &q.op {
                ReqOp::Write(arg) => {
                    engine.initiate_write(q.node, arg.clone());
                    completions.push(Completion::Write {
                        seq_index: next,
                        node: q.node,
                        arg: arg.clone(),
                    });
                }
                ReqOp::Combine => match engine.initiate_combine(q.node) {
                    CombineOutcome::Done(v) => {
                        let oracle = engine.global_oracle();
                        completions.push(Completion::Combine {
                            seq_index: next,
                            node: q.node,
                            value: v,
                            oracle,
                        });
                    }
                    CombineOutcome::Pending | CombineOutcome::Coalesced => {
                        outstanding[q.node.idx()].push(next);
                    }
                },
            }
            next += 1;
        } else if let Some(d) = engine.deliver_next() {
            if let Some(v) = d.completed {
                let oracle = engine.global_oracle();
                let waiting = std::mem::take(&mut outstanding[d.node.idx()]);
                assert!(
                    !waiting.is_empty(),
                    "completion at {} with no outstanding combine",
                    d.node
                );
                for seq_index in waiting {
                    completions.push(Completion::Combine {
                        seq_index,
                        node: d.node,
                        value: v.clone(),
                        oracle: oracle.clone(),
                    });
                }
            }
        }
    }

    assert!(
        outstanding.iter().all(|o| o.is_empty()),
        "combines left incomplete after drain"
    );
    let total_msgs = engine.stats().total();
    ConcurrentResult {
        engine,
        completions,
        total_msgs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;
    use oat_core::policy::rww::RwwSpec;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn workload(nn: u32, len: usize, seed: u64) -> Vec<Request<i64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|i| {
                let node = n(rng.gen_range(0..nn));
                if rng.gen_bool(0.5) {
                    Request::combine(node)
                } else {
                    Request::write(node, i as i64)
                }
            })
            .collect()
    }

    #[test]
    fn all_requests_complete() {
        let tree = Tree::kary(8, 2);
        let seq = workload(8, 60, 7);
        let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, 42, 0.5);
        let combines = seq.iter().filter(|q| q.op.is_combine()).count();
        let completed_combines = res
            .completions
            .iter()
            .filter(|c| matches!(c, Completion::Combine { .. }))
            .count();
        assert_eq!(completed_combines, combines);
        assert_eq!(res.completions.len(), seq.len());
    }

    #[test]
    fn serialised_interleaving_matches_sequential_semantics() {
        // aggressiveness with immediate drain (no overlap) must return
        // strictly consistent values: run with tiny aggressiveness so the
        // executor nearly always drains before initiating.
        let tree = Tree::path(5);
        let seq = workload(5, 40, 3);
        let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, 9, 0.01);
        // With so little overlap, misses should be rare; a fully
        // sequential run has none. We only smoke-test convergence here —
        // exact strict checks live in the sequential tests.
        assert_eq!(res.completions.len(), seq.len());
    }

    #[test]
    fn ghost_logs_populated() {
        let tree = Tree::path(3);
        let seq = vec![
            Request::write(n(0), 5),
            Request::combine(n(2)),
            Request::write(n(1), 3),
            Request::combine(n(0)),
        ];
        let res = run_concurrent(&tree, SumI64, &RwwSpec, &seq, 1, 0.7);
        // Every node that completed a combine has a ghost log with that
        // combine recorded; every write is in its writer's log.
        let g0 = res.engine.node(n(0)).ghost().unwrap();
        assert!(g0.log.iter().any(|e| e.as_write().is_some()));
    }
}
