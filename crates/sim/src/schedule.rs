//! Message-delivery schedules.
//!
//! The network model fixes per-channel FIFO order but says nothing about
//! the relative delivery order of messages on *different* channels. A
//! [`Schedule`] picks which non-empty channel delivers next. The paper's
//! sequential-execution results (message counts, returned values,
//! quiescent states) are schedule-independent — a property the test suite
//! verifies by running the same workload under several seeds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy for choosing the next channel to deliver from.
#[derive(Clone, Debug)]
pub enum Schedule {
    /// Deliver messages in global send order (oldest first).
    Fifo,
    /// Deliver from a uniformly random non-empty channel (seeded).
    Random(u64),
}

/// Mutable scheduler state built from a [`Schedule`].
#[derive(Clone)]
pub(crate) enum SchedulerState {
    Fifo,
    Random(Box<StdRng>),
}

impl Schedule {
    pub(crate) fn state(&self) -> SchedulerState {
        match self {
            Schedule::Fifo => SchedulerState::Fifo,
            Schedule::Random(seed) => {
                SchedulerState::Random(Box::new(StdRng::seed_from_u64(*seed)))
            }
        }
    }
}

impl SchedulerState {
    /// Chooses an index into `tokens` (pending delivery slots).
    pub(crate) fn pick(&mut self, tokens: usize) -> usize {
        debug_assert!(tokens > 0);
        match self {
            SchedulerState::Fifo => 0,
            SchedulerState::Random(rng) => rng.gen_range(0..tokens),
        }
    }
}
