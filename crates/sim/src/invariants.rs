//! Executable invariants for quiescent states.
//!
//! These are the structural lemmas of Section 3 and the RWW invariant of
//! Section 4, phrased as checks over a quiescent [`Engine`]:
//!
//! * **Lemma 3.1** — `u.taken[v] = v.granted[u]` for all neighbours,
//! * **Lemma 3.2** — `u.granted[v]` implies `u.taken[w]` for all `w ≠ v`,
//! * **Lemma 3.4** — `pndg` and every `snt[·]` are empty,
//! * **I3 (Lemma 3.11)** — for every taken neighbour `v`, `u.aval[v]`
//!   equals `⊕` over the current local values of `subtree(v, u)` (we check
//!   against ground truth, which subsumes `I1`/`I2` at quiescence),
//! * **I4 (Lemma 4.2)** — RWW's lease-counter invariant.
//!
//! All checks return `Err(description)` on the first violation so tests
//! and property tests produce useful diagnostics.

use oat_core::agg::AggOp;
use oat_core::policy::rww::RwwSpec;
use oat_core::policy::PolicySpec;
use oat_core::tree::NodeId;

use crate::engine::Engine;

/// Lemma 3.1: lease views agree across each edge.
pub fn check_taken_granted_symmetry<S: PolicySpec, A: AggOp>(
    eng: &Engine<S, A>,
) -> Result<(), String> {
    let tree = eng.tree();
    for (u, v) in tree.dir_edges().collect::<Vec<_>>() {
        let ui = tree.nbr_index(u, v).expect("adjacent");
        let vi = tree.nbr_index(v, u).expect("adjacent");
        let t = eng.node(u).taken(ui);
        let g = eng.node(v).granted(vi);
        if t != g {
            return Err(format!(
                "Lemma 3.1 violated: {u}.taken[{v}]={t} but {v}.granted[{u}]={g}"
            ));
        }
    }
    Ok(())
}

/// Lemma 3.2: a grant pins all other incident leases.
pub fn check_grant_implies_taken<S: PolicySpec, A: AggOp>(
    eng: &Engine<S, A>,
) -> Result<(), String> {
    let tree = eng.tree();
    for u in tree.nodes() {
        let node = eng.node(u);
        for (vi, &v) in tree.nbrs(u).iter().enumerate() {
            if node.granted(vi) {
                for (wi, &w) in tree.nbrs(u).iter().enumerate() {
                    if wi != vi && !node.taken(wi) {
                        return Err(format!(
                            "Lemma 3.2 violated at {u}: granted[{v}] but not taken[{w}]"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Lemma 3.4: no pending bookkeeping survives a quiescent state.
pub fn check_no_pending<S: PolicySpec, A: AggOp>(eng: &Engine<S, A>) -> Result<(), String> {
    if !eng.is_quiescent() {
        return Err("network is not quiescent".into());
    }
    for u in eng.tree().nodes() {
        let node = eng.node(u);
        if !node.pndg().is_empty() {
            return Err(format!("Lemma 3.4 violated: {u}.pndg = {:?}", node.pndg()));
        }
        if !node.snt_all_empty() {
            return Err(format!("Lemma 3.4 violated: {u}.snt not empty"));
        }
    }
    Ok(())
}

/// I3 against ground truth: cached subtree aggregates along taken leases
/// match `⊕` over the actual local values of the subtree.
pub fn check_aval_ground_truth<S: PolicySpec, A: AggOp>(
    eng: &Engine<S, A>,
    op: &A,
) -> Result<(), String> {
    let tree = eng.tree();
    for u in tree.nodes() {
        let node = eng.node(u);
        for (vi, &v) in tree.nbrs(u).iter().enumerate() {
            if !node.taken(vi) {
                continue;
            }
            let truth = op.fold(
                tree.subtree_nodes(v, u)
                    .iter()
                    .map(|&x| eng.node(x).val())
                    .collect::<Vec<_>>(),
            );
            if *node.aval(vi) != truth {
                return Err(format!(
                    "I3 violated at {u}: aval[{v}] = {:?}, subtree truth = {truth:?}",
                    node.aval(vi)
                ));
            }
        }
    }
    Ok(())
}

/// All structural checks applicable to any lease-based algorithm.
pub fn check_all<S: PolicySpec, A: AggOp>(eng: &Engine<S, A>, op: &A) -> Result<(), String> {
    check_no_pending(eng)?;
    check_taken_granted_symmetry(eng)?;
    check_grant_implies_taken(eng)?;
    check_aval_ground_truth(eng, op)
}

/// I4 (Lemma 4.2), specific to RWW: for every node `u` and neighbour `v`:
/// if `¬taken[v]` then `uaw[v] = ∅`; else if `grntd() \ {v} = ∅` then
/// `lt[v] + |uaw[v]| = 2 ∧ lt[v] > 0`; else `lt[v] = 2`.
pub fn check_rww_i4<A: AggOp>(eng: &Engine<RwwSpec, A>) -> Result<(), String> {
    let tree = eng.tree();
    for u in tree.nodes() {
        let node = eng.node(u);
        let grants: Vec<usize> = (0..tree.degree(u)).filter(|&i| node.granted(i)).collect();
        for (vi, &v) in tree.nbrs(u).iter().enumerate() {
            let lt = node.policy().lt(vi) as usize;
            let uaw = node.uaw(vi).len();
            if !node.taken(vi) {
                if uaw != 0 {
                    return Err(format!("I4: {u} not taken[{v}] but uaw = {uaw}"));
                }
            } else if grants.iter().all(|&g| g == vi) {
                if lt + uaw != 2 || lt == 0 {
                    return Err(format!(
                        "I4: {u} taken[{v}], lone grant case: lt={lt}, |uaw|={uaw}"
                    ));
                }
            } else if lt != 2 {
                return Err(format!("I4: {u} taken[{v}], other grants: lt={lt} != 2"));
            }
        }
    }
    Ok(())
}

/// The lease graph `G(Q)`: directed edges `(u, v)` with `u.granted[v]`
/// (Section 3.2). Returned as a list of ordered pairs.
pub fn lease_graph<S: PolicySpec, A: AggOp>(eng: &Engine<S, A>) -> Vec<(NodeId, NodeId)> {
    let tree = eng.tree();
    let mut out = Vec::new();
    for u in tree.nodes() {
        for (vi, &v) in tree.nbrs(u).iter().enumerate() {
            if eng.node(u).granted(vi) {
                out.push((u, v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use oat_core::agg::SumI64;
    use oat_core::request::Request;
    use oat_core::tree::Tree;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn invariants_hold_after_mixed_run() {
        let tree = Tree::kary(10, 3);
        let mut eng = Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
        let seq = vec![
            Request::combine(n(7)),
            Request::write(n(2), 4),
            Request::combine(n(9)),
            Request::write(n(0), 3),
            Request::write(n(5), 2),
            Request::combine(n(1)),
        ];
        let chunk = crate::sequential::run_sequential_on(&mut eng, &seq, 0);
        assert_eq!(chunk.combines.len(), 3);
        check_all(&eng, &SumI64).unwrap();
        check_rww_i4(&eng).unwrap();
    }

    #[test]
    fn lease_graph_after_combine_points_at_reader() {
        let tree = Tree::path(3);
        let mut eng = Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
        eng.initiate_combine(n(0));
        eng.run_to_quiescence();
        let lg = lease_graph(&eng);
        // All leases direct updates toward node 0: 2->1 and 1->0.
        assert!(lg.contains(&(n(1), n(0))));
        assert!(lg.contains(&(n(2), n(1))));
        assert_eq!(lg.len(), 2);
    }
}
