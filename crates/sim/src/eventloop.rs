//! A generic deterministic timed event queue.
//!
//! The lease-mechanism [`Engine`](crate::Engine) owns its own channel
//! scheduler, but other problem families on the same tree substrate
//! (notably `oat-mlap`) need a plain *timed* event loop with the same
//! determinism contract: events fire in nondecreasing time order, and
//! same-time ties are broken by the shared [`Schedule`] — insertion
//! order under [`Schedule::Fifo`], a seeded shuffle under
//! [`Schedule::Random`]. Running the same instance under several
//! `Random` seeds and asserting identical results is how callers verify
//! their semantics are schedule-independent (the MLAP engine's tests do
//! exactly that, mirroring the lease simulator's test strategy).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schedule::Schedule;

/// A deterministic min-time priority queue of `(time, payload)` events.
///
/// `pop` always returns an event with the minimal pending time; among
/// equal times the order is the schedule's (FIFO insertion order, or a
/// seeded random permutation). Payloads need no trait bounds.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    tiebreak: TieBreak,
}

enum TieBreak {
    Fifo,
    Random(Box<StdRng>),
}

struct Entry<E> {
    at: u64,
    tiebreak: u64,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (u64, u64, u64) {
        (self.at, self.tiebreak, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum key.
        other.key().cmp(&self.key())
    }
}

impl<E> EventQueue<E> {
    /// An empty queue whose tie-breaking follows `schedule`.
    pub fn new(schedule: Schedule) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            tiebreak: match schedule {
                Schedule::Fifo => TieBreak::Fifo,
                Schedule::Random(seed) => TieBreak::Random(Box::new(StdRng::seed_from_u64(seed))),
            },
        }
    }

    /// Enqueues `payload` to fire at time `at`.
    pub fn push(&mut self, at: u64, payload: E) {
        let tiebreak = match &mut self.tiebreak {
            TieBreak::Fifo => 0,
            TieBreak::Random(rng) => rng.gen(),
        };
        self.seq += 1;
        self.heap.push(Entry {
            at,
            tiebreak,
            seq: self.seq,
            payload,
        });
    }

    /// Removes and returns a minimal-time event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The time of the next event without removing it.
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn fifo_preserves_insertion_order_within_a_time() {
        let mut q = EventQueue::new(Schedule::Fifo);
        q.push(5, 50);
        q.push(1, 10);
        q.push(5, 51);
        q.push(1, 11);
        q.push(3, 30);
        assert_eq!(q.next_time(), Some(1));
        assert_eq!(
            drain(&mut q),
            vec![(1, 10), (1, 11), (3, 30), (5, 50), (5, 51)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn random_respects_times_and_is_seed_deterministic() {
        let order = |seed: u64| {
            let mut q = EventQueue::new(Schedule::Random(seed));
            for i in 0..20u32 {
                q.push(u64::from(i) % 3, i);
            }
            drain(&mut q)
        };
        let a = order(7);
        assert_eq!(a, order(7), "same seed, same order");
        let times: Vec<u64> = a.iter().map(|&(t, _)| t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "time order is never violated");
        // Some seed permutes within a time bucket (20 events over 3
        // buckets: astronomically unlikely that every seed is FIFO).
        let fifo = order_fifo();
        assert!(
            (0..8).any(|s| order(s) != fifo),
            "random schedule should shuffle within buckets"
        );
    }

    fn order_fifo() -> Vec<(u64, u32)> {
        let mut q = EventQueue::new(Schedule::Fifo);
        for i in 0..20u32 {
            q.push(u64::from(i) % 3, i);
        }
        drain(&mut q)
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q: EventQueue<&'static str> = EventQueue::new(Schedule::Fifo);
        assert!(q.is_empty());
        q.push(2, "b");
        q.push(1, "a");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.len(), 1);
    }
}
