//! ASCII rendering of trees and lease graphs.
//!
//! A quiescent lease state is a picture: each tree edge carries zero,
//! one, or two directed leases. [`render_leases`] draws the tree as an
//! indented hierarchy (rooted at node 0) with per-edge lease markers:
//!
//! ```text
//! n0 (=0)
//! ├─▲── n1 (=5)      ▲  child grants to parent (updates flow up)
//! │     └─▼── n3     ▼  parent grants to child (updates flow down)
//! └─┼── n2           ┼  both directions    ─  no lease
//! ```
//!
//! Used by examples and handy in test failure output.

use oat_core::agg::AggOp;
use oat_core::policy::PolicySpec;
use oat_core::tree::{NodeId, Tree};

use crate::engine::Engine;

/// Renders the bare topology (rooted at node 0).
pub fn render_tree(tree: &Tree) -> String {
    render_impl(tree, &mut |_, _| "──".to_string(), &mut |_| {
        String::new()
    })
}

/// Renders the topology with lease markers and local values.
pub fn render_leases<S: PolicySpec, A: AggOp>(eng: &Engine<S, A>) -> String
where
    A::Value: std::fmt::Debug,
{
    let tree = eng.tree().clone();
    render_impl(
        &tree,
        &mut |parent, child| {
            let up = eng
                .node(child)
                .granted(eng.tree().nbr_index(child, parent).expect("adjacent"));
            let down = eng
                .node(parent)
                .granted(eng.tree().nbr_index(parent, child).expect("adjacent"));
            match (up, down) {
                (true, true) => "┼─".to_string(),
                (true, false) => "▲─".to_string(),
                (false, true) => "▼─".to_string(),
                (false, false) => "──".to_string(),
            }
        },
        &mut |u| format!(" (={:?})", eng.node(u).val()),
    )
}

fn render_impl(
    tree: &Tree,
    edge_marker: &mut dyn FnMut(NodeId, NodeId) -> String,
    label: &mut dyn FnMut(NodeId) -> String,
) -> String {
    let root = NodeId(0);
    let mut out = format!("{root}{}\n", label(root));
    let mut stack: Vec<(NodeId, NodeId, String, bool)> = Vec::new();
    // Children of root in reverse so the stack pops them in order.
    let kids: Vec<NodeId> = tree.nbrs(root).to_vec();
    for (i, &c) in kids.iter().enumerate().rev() {
        stack.push((root, c, String::new(), i == kids.len() - 1));
    }
    while let Some((parent, node, prefix, last)) = stack.pop() {
        let branch = if last { "└─" } else { "├─" };
        out.push_str(&format!(
            "{prefix}{branch}{}─ {node}{}\n",
            edge_marker(parent, node),
            label(node)
        ));
        let child_prefix = format!("{prefix}{}", if last { "      " } else { "│     " });
        let kids: Vec<NodeId> = tree
            .nbrs(node)
            .iter()
            .copied()
            .filter(|&c| c != parent)
            .collect();
        for (i, &c) in kids.iter().enumerate().rev() {
            stack.push((node, c, child_prefix.clone(), i == kids.len() - 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use oat_core::agg::SumI64;
    use oat_core::policy::rww::RwwSpec;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn renders_topology_shape() {
        let t = Tree::kary(5, 2);
        let s = render_tree(&t);
        assert!(s.starts_with("n0\n"));
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("├────"), "{s}");
        assert!(s.contains("└────"), "{s}");
    }

    #[test]
    fn lease_markers_reflect_grants() {
        let tree = Tree::path(3);
        let mut eng: Engine<RwwSpec, SumI64> =
            Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
        eng.initiate_write(n(2), 7);
        eng.run_to_quiescence();
        // Combine at root: leases point up toward n0 everywhere.
        eng.initiate_combine(n(0));
        eng.run_to_quiescence();
        let s = render_leases(&eng);
        assert!(s.contains("▲"), "upward leases expected:\n{s}");
        assert!(!s.contains("▼"), "no downward leases yet:\n{s}");
        assert!(s.contains("(=7)"), "{s}");
        // Combine at the leaf: now the path carries both directions.
        eng.initiate_combine(n(2));
        eng.run_to_quiescence();
        let s = render_leases(&eng);
        assert!(s.contains("┼"), "bidirectional leases expected:\n{s}");
    }
}
