//! Sequential execution of request sequences (Section 2).
//!
//! In a *sequential execution*, every request is initiated in a quiescent
//! state and runs until the network is quiescent again. This module
//! executes a whole sequence that way, recording per-request message
//! counts and every combine's return value — the raw material for the
//! strict-consistency checks (Lemma 3.12) and all competitive-ratio
//! experiments (Section 4).

use oat_core::agg::AggOp;
use oat_core::mechanism::CombineOutcome;
use oat_core::policy::PolicySpec;
use oat_core::request::{ReqOp, Request};
use oat_core::tree::Tree;

use crate::engine::Engine;
use crate::schedule::Schedule;

/// Outcome of a sequential run.
pub struct SeqResult<S: PolicySpec, A: AggOp> {
    /// The engine in its final quiescent state (for invariant checks).
    pub engine: Engine<S, A>,
    /// `(request index, returned value)` for every combine, in order.
    pub combines: Vec<(usize, A::Value)>,
    /// Messages sent while executing each request.
    pub per_request_msgs: Vec<u64>,
    /// Hop latency of each request (see [`SeqChunk::per_request_latency`]).
    pub per_request_latency: Vec<u32>,
}

impl<S: PolicySpec, A: AggOp> SeqResult<S, A> {
    /// Total messages over the whole sequence — the paper's `C_A(σ)`.
    pub fn total_msgs(&self) -> u64 {
        self.per_request_msgs.iter().sum()
    }
}

/// Combine results and per-request message counts of one executed chunk.
pub struct SeqChunk<V> {
    /// `(request index, returned value)` for every combine, in order.
    pub combines: Vec<(usize, V)>,
    /// Messages sent while executing each request.
    pub per_request_msgs: Vec<u64>,
    /// Hop latency of each request: for a combine, the causal depth of
    /// the chain that completed it (0 when answered locally); for a
    /// write, the depth of its longest update/release cascade.
    pub per_request_latency: Vec<u32>,
}

/// Executes `seq` sequentially on a fresh engine.
///
/// Panics if a combine fails to complete within its own execution — which
/// would contradict Lemma 3.3/3.4 and therefore indicates a mechanism bug,
/// not a workload problem.
///
/// ```
/// use oat_core::{agg::SumI64, policy::rww::RwwSpec, request::Request, tree::{NodeId, Tree}};
/// use oat_sim::{run_sequential, Schedule};
///
/// let tree = Tree::pair();
/// let seq = vec![
///     Request::combine(NodeId(1)),   // cold read: probe + response = 2
///     Request::write(NodeId(0), 7),  // leased write: 1 update
///     Request::combine(NodeId(1)),   // warm read: free
/// ];
/// let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
/// assert_eq!(res.per_request_msgs, vec![2, 1, 0]);
/// assert_eq!(res.combines, vec![(0, 0), (2, 7)]);
/// ```
pub fn run_sequential<S: PolicySpec, A: AggOp>(
    tree: &Tree,
    op: A,
    spec: &S,
    schedule: Schedule,
    seq: &[Request<A::Value>],
    ghost: bool,
) -> SeqResult<S, A> {
    let mut engine = Engine::new(tree.clone(), op, spec, schedule, ghost);
    let chunk = run_sequential_on(&mut engine, seq, 0);
    SeqResult {
        engine,
        combines: chunk.combines,
        per_request_msgs: chunk.per_request_msgs,
        per_request_latency: chunk.per_request_latency,
    }
}

/// Executes `seq` sequentially on an existing quiescent engine;
/// `index_base` offsets the recorded request indices, so sequences can be
/// fed in chunks (e.g. by phase-based workloads).
pub fn run_sequential_on<S: PolicySpec, A: AggOp>(
    engine: &mut Engine<S, A>,
    seq: &[Request<A::Value>],
    index_base: usize,
) -> SeqChunk<A::Value> {
    assert!(engine.is_quiescent(), "sequential runs start quiescent");
    let mut combines = Vec::new();
    let mut per_request_msgs = Vec::with_capacity(seq.len());
    let mut per_request_latency = Vec::with_capacity(seq.len());
    for (i, q) in seq.iter().enumerate() {
        let before = engine.stats().total();
        engine.reset_depth_window();
        match &q.op {
            ReqOp::Write(arg) => {
                engine.initiate_write(q.node, arg.clone());
                let done = engine.run_to_quiescence();
                assert!(
                    done.is_empty(),
                    "a write execution cannot complete a combine in a sequential run"
                );
                per_request_latency.push(engine.window_max_depth());
            }
            ReqOp::Combine => match engine.initiate_combine(q.node) {
                CombineOutcome::Done(v) => {
                    combines.push((index_base + i, v));
                    per_request_latency.push(0);
                }
                CombineOutcome::Pending => {
                    // Drain manually so the completing delivery's depth
                    // (the combine's hop latency) can be captured.
                    let mut mine: Option<(A::Value, u32)> = None;
                    while let Some(d) = engine.deliver_next() {
                        if let Some(v) = d.completed {
                            assert_eq!(d.node, q.node, "foreign combine completion");
                            assert!(mine.is_none(), "duplicate combine completion");
                            mine = Some((v, d.depth));
                        }
                    }
                    let (v, depth) = mine.expect("combine completes within its execution");
                    combines.push((index_base + i, v));
                    per_request_latency.push(depth);
                }
                CombineOutcome::Coalesced => {
                    unreachable!("coalescing is impossible in sequential executions")
                }
            },
        }
        debug_assert!(engine.is_quiescent());
        per_request_msgs.push(engine.stats().total() - before);
    }
    SeqChunk {
        combines,
        per_request_msgs,
        per_request_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;
    use oat_core::policy::baseline::{AlwaysLeaseSpec, NeverLeaseSpec};
    use oat_core::policy::rww::RwwSpec;
    use oat_core::tree::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn rww_pair_cycle_costs() {
        // The classic R W W cycle on two nodes: combine at 1 costs 2,
        // first write at 0 costs 1 (update), second costs 2
        // (update + release).
        let tree = Tree::pair();
        let seq = vec![
            Request::combine(n(1)),
            Request::write(n(0), 1),
            Request::write(n(0), 2),
            Request::combine(n(1)),
            Request::write(n(0), 3),
            Request::write(n(0), 4),
        ];
        let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        assert_eq!(res.per_request_msgs, vec![2, 1, 2, 2, 1, 2]);
        assert_eq!(res.combines, vec![(0, 0), (3, 2)]);
        assert_eq!(res.total_msgs(), 10);
    }

    #[test]
    fn latency_tracks_hop_distance() {
        // On a path, a cold combine at one end must travel to the other
        // end and back: probe chain depth n-1, response chain back to
        // depth 2(n-1). A leased combine is free (latency 0); a write at
        // the far end cascades updates with depth n-1.
        let tree = Tree::path(5);
        let seq = vec![
            Request::combine(n(0)),
            Request::combine(n(0)),
            Request::write(n(4), 9),
        ];
        let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        assert_eq!(res.per_request_latency, vec![8, 0, 4]);
    }

    #[test]
    fn never_lease_costs_scale_with_tree() {
        let tree = Tree::star(5);
        let seq = vec![
            Request::write(n(1), 10),
            Request::combine(n(2)),
            Request::combine(n(2)),
        ];
        let res = run_sequential(&tree, SumI64, &NeverLeaseSpec, Schedule::Fifo, &seq, false);
        // Every combine floods the tree: 2 * 4 = 8 messages; writes free.
        assert_eq!(res.per_request_msgs, vec![0, 8, 8]);
        assert_eq!(res.combines, vec![(1, 10), (2, 10)]);
    }

    #[test]
    fn always_lease_amortises_reads() {
        let tree = Tree::star(5);
        let seq = vec![
            Request::combine(n(2)),  // builds leases: 8 msgs
            Request::combine(n(2)),  // free
            Request::combine(n(2)),  // free
            Request::write(n(1), 3), // pushed everywhere
        ];
        let res = run_sequential(&tree, SumI64, &AlwaysLeaseSpec, Schedule::Fifo, &seq, false);
        assert_eq!(res.per_request_msgs[0], 8);
        assert_eq!(res.per_request_msgs[1], 0);
        assert_eq!(res.per_request_msgs[2], 0);
        // The write pushes updates along the lease graph built by the
        // combine at node 2 (directed toward node 2): 1 -> 0 -> 2.
        assert_eq!(res.per_request_msgs[3], 2);
        assert_eq!(res.combines.len(), 3);
    }

    #[test]
    fn strict_consistency_on_random_small_run() {
        let tree = Tree::kary(6, 2);
        let seq = vec![
            Request::write(n(5), 5),
            Request::combine(n(3)),
            Request::write(n(0), 7),
            Request::combine(n(3)),
            Request::write(n(5), 1),
            Request::combine(n(4)),
        ];
        let res = run_sequential(&tree, SumI64, &RwwSpec, Schedule::Fifo, &seq, false);
        assert_eq!(res.combines, vec![(1, 5), (3, 12), (5, 8)]);
    }
}
