//! Message accounting.
//!
//! The paper's cost measure is the total number of messages exchanged
//! (Section 2); the competitive analysis decomposes it per ordered pair of
//! neighbours (Lemma 3.9): `C(σ, u, v)` counts probes `v→u`, responses
//! `u→v`, updates `u→v`, and releases `v→u`. [`MsgStats`] keeps a counter
//! per `(directed edge, message kind)` so both the global total and every
//! `C(σ, u, v)` can be read off after a run.

use oat_core::message::MsgKind;
use oat_core::tree::{NodeId, Tree};

/// Per-directed-edge, per-kind message counters.
#[derive(Clone, Debug)]
pub struct MsgStats {
    per_edge: Vec<[u64; 4]>,
}

impl MsgStats {
    /// Zeroed counters for a tree.
    pub fn new(tree: &Tree) -> Self {
        MsgStats {
            per_edge: vec![[0; 4]; tree.num_dir_edges()],
        }
    }

    /// Records one message sent over the directed edge with dense index
    /// `edge`.
    #[inline]
    pub fn record(&mut self, edge: usize, kind: MsgKind) {
        self.per_edge[edge][kind.index()] += 1;
    }

    /// Total messages of all kinds.
    pub fn total(&self) -> u64 {
        self.per_edge.iter().flatten().sum()
    }

    /// Total messages of one kind.
    pub fn total_kind(&self, kind: MsgKind) -> u64 {
        self.per_edge.iter().map(|c| c[kind.index()]).sum()
    }

    /// Count for a specific directed edge and kind.
    pub fn edge_kind(&self, tree: &Tree, from: NodeId, to: NodeId, kind: MsgKind) -> u64 {
        self.per_edge[tree.dir_edge_index(from, to)][kind.index()]
    }

    /// The ordered-pair cost `C(σ, u, v)` of Lemma 3.9: probes `v→u`,
    /// responses `u→v`, updates `u→v`, releases `v→u`.
    pub fn pair_cost(&self, tree: &Tree, u: NodeId, v: NodeId) -> u64 {
        let vu = tree.dir_edge_index(v, u);
        let uv = tree.dir_edge_index(u, v);
        self.per_edge[vu][MsgKind::Probe.index()]
            + self.per_edge[uv][MsgKind::Response.index()]
            + self.per_edge[uv][MsgKind::Update.index()]
            + self.per_edge[vu][MsgKind::Release.index()]
    }

    /// Messages crossing the undirected edge `{u, v}` in either direction.
    pub fn edge_total(&self, tree: &Tree, u: NodeId, v: NodeId) -> u64 {
        let uv = tree.dir_edge_index(u, v);
        let vu = tree.dir_edge_index(v, u);
        self.per_edge[uv].iter().sum::<u64>() + self.per_edge[vu].iter().sum::<u64>()
    }

    /// Difference of totals — used for per-request message windows.
    pub fn snapshot_total(&self) -> u64 {
        self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_cost_decomposition_matches_edge_total() {
        // Lemma 3.9: messages over {u,v} = C(σ,u,v) + C(σ,v,u).
        let tree = Tree::path(3);
        let mut s = MsgStats::new(&tree);
        let u = NodeId(0);
        let v = NodeId(1);
        s.record(tree.dir_edge_index(v, u), MsgKind::Probe);
        s.record(tree.dir_edge_index(u, v), MsgKind::Response);
        s.record(tree.dir_edge_index(u, v), MsgKind::Update);
        s.record(tree.dir_edge_index(v, u), MsgKind::Release);
        s.record(tree.dir_edge_index(u, v), MsgKind::Probe);
        s.record(tree.dir_edge_index(v, u), MsgKind::Response);
        assert_eq!(s.pair_cost(&tree, u, v), 4);
        assert_eq!(s.pair_cost(&tree, v, u), 2);
        assert_eq!(s.edge_total(&tree, u, v), 6);
        assert_eq!(
            s.pair_cost(&tree, u, v) + s.pair_cost(&tree, v, u),
            s.edge_total(&tree, u, v)
        );
        assert_eq!(s.total(), 6);
        assert_eq!(s.total_kind(MsgKind::Probe), 2);
    }
}
