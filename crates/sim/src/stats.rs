//! Message accounting.
//!
//! The paper's cost measure is the total number of messages exchanged
//! (Section 2); the competitive analysis decomposes it per ordered pair of
//! neighbours (Lemma 3.9): `C(σ, u, v)` counts probes `v→u`, responses
//! `u→v`, updates `u→v`, and releases `v→u`. [`MsgStats`] keeps a counter
//! per `(directed edge, message kind)` so both the global total and every
//! `C(σ, u, v)` can be read off after a run.

use oat_core::message::MsgKind;
use oat_core::tree::{NodeId, Tree};

/// Per-directed-edge, per-kind message counters.
#[derive(Clone, Debug)]
pub struct MsgStats {
    per_edge: Vec<[u64; 4]>,
}

impl MsgStats {
    /// Zeroed counters for a tree.
    pub fn new(tree: &Tree) -> Self {
        MsgStats {
            per_edge: vec![[0; 4]; tree.num_dir_edges()],
        }
    }

    /// Records one message sent over the directed edge with dense index
    /// `edge`.
    #[inline]
    pub fn record(&mut self, edge: usize, kind: MsgKind) {
        self.per_edge[edge][kind.index()] += 1;
    }

    /// Adds `count` messages of `kind` on directed edge `edge` — for
    /// rebuilding counters from a remote node's metrics snapshot.
    #[inline]
    pub fn add(&mut self, edge: usize, kind: MsgKind, count: u64) {
        self.per_edge[edge][kind.index()] += count;
    }

    /// Raw per-directed-edge counters, indexed by dense directed-edge
    /// index, kinds in [`MsgKind::ALL`] order.
    pub fn per_edge_counts(&self) -> &[[u64; 4]] {
        &self.per_edge
    }

    /// Total messages of all kinds.
    pub fn total(&self) -> u64 {
        self.per_edge.iter().flatten().sum()
    }

    /// Total messages of one kind.
    pub fn total_kind(&self, kind: MsgKind) -> u64 {
        self.per_edge.iter().map(|c| c[kind.index()]).sum()
    }

    /// Count for a specific directed edge and kind.
    pub fn edge_kind(&self, tree: &Tree, from: NodeId, to: NodeId, kind: MsgKind) -> u64 {
        self.per_edge[tree.dir_edge_index(from, to)][kind.index()]
    }

    /// The ordered-pair cost `C(σ, u, v)` of Lemma 3.9: probes `v→u`,
    /// responses `u→v`, updates `u→v`, releases `v→u`.
    pub fn pair_cost(&self, tree: &Tree, u: NodeId, v: NodeId) -> u64 {
        let vu = tree.dir_edge_index(v, u);
        let uv = tree.dir_edge_index(u, v);
        self.per_edge[vu][MsgKind::Probe.index()]
            + self.per_edge[uv][MsgKind::Response.index()]
            + self.per_edge[uv][MsgKind::Update.index()]
            + self.per_edge[vu][MsgKind::Release.index()]
    }

    /// Messages crossing the undirected edge `{u, v}` in either direction.
    pub fn edge_total(&self, tree: &Tree, u: NodeId, v: NodeId) -> u64 {
        let uv = tree.dir_edge_index(u, v);
        let vu = tree.dir_edge_index(v, u);
        self.per_edge[uv].iter().sum::<u64>() + self.per_edge[vu].iter().sum::<u64>()
    }

    /// Difference of totals — used for per-request message windows.
    pub fn snapshot_total(&self) -> u64 {
        self.total()
    }

    /// Adds every counter of `other` into `self`. Used by the TCP runtime,
    /// where each node thread records only its own sends and the cluster
    /// merges the per-node counters into one simulator-comparable view.
    pub fn merge(&mut self, other: &MsgStats) {
        assert_eq!(
            self.per_edge.len(),
            other.per_edge.len(),
            "merging stats from different trees"
        );
        for (mine, theirs) in self.per_edge.iter_mut().zip(&other.per_edge) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }

    /// Totals per kind, in [`MsgKind::ALL`] order.
    pub fn kind_totals(&self) -> [u64; 4] {
        let mut out = [0u64; 4];
        for counters in &self.per_edge {
            for (o, c) in out.iter_mut().zip(counters) {
                *o += c;
            }
        }
        out
    }

    /// JSON export of the full per-directed-edge, per-kind breakdown.
    ///
    /// Shared by `oat-sim` and `oat-net` so benchmark trajectories
    /// (`BENCH_*.json`) are directly comparable across transports. The
    /// output is deterministic: edges appear in dense directed-edge-index
    /// order, kinds in [`MsgKind::ALL`] order.
    pub fn to_json(&self, tree: &Tree) -> String {
        let kinds = self.kind_totals();
        let mut out = String::with_capacity(64 + 96 * self.per_edge.len());
        out.push_str(&format!(
            "{{\n  \"total\": {},\n  \"by_kind\": {{",
            self.total()
        ));
        for (i, kind) in MsgKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", kind.name(), kinds[i]));
        }
        out.push_str("},\n  \"edges\": [\n");
        for (i, counters) in self.per_edge.iter().enumerate() {
            let (from, to) = tree.dir_edge(i);
            out.push_str(&format!("    {{\"from\": {}, \"to\": {}", from.0, to.0));
            for (kind, c) in MsgKind::ALL.iter().zip(counters) {
                out.push_str(&format!(", \"{}\": {}", kind.name(), c));
            }
            out.push('}');
            if i + 1 < self.per_edge.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_cost_decomposition_matches_edge_total() {
        // Lemma 3.9: messages over {u,v} = C(σ,u,v) + C(σ,v,u).
        let tree = Tree::path(3);
        let mut s = MsgStats::new(&tree);
        let u = NodeId(0);
        let v = NodeId(1);
        s.record(tree.dir_edge_index(v, u), MsgKind::Probe);
        s.record(tree.dir_edge_index(u, v), MsgKind::Response);
        s.record(tree.dir_edge_index(u, v), MsgKind::Update);
        s.record(tree.dir_edge_index(v, u), MsgKind::Release);
        s.record(tree.dir_edge_index(u, v), MsgKind::Probe);
        s.record(tree.dir_edge_index(v, u), MsgKind::Response);
        assert_eq!(s.pair_cost(&tree, u, v), 4);
        assert_eq!(s.pair_cost(&tree, v, u), 2);
        assert_eq!(s.edge_total(&tree, u, v), 6);
        assert_eq!(
            s.pair_cost(&tree, u, v) + s.pair_cost(&tree, v, u),
            s.edge_total(&tree, u, v)
        );
        assert_eq!(s.total(), 6);
        assert_eq!(s.total_kind(MsgKind::Probe), 2);
    }

    #[test]
    fn merge_adds_counters() {
        let tree = Tree::path(3);
        let mut a = MsgStats::new(&tree);
        let mut b = MsgStats::new(&tree);
        a.record(0, MsgKind::Probe);
        b.record(0, MsgKind::Probe);
        b.record(1, MsgKind::Update);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.total_kind(MsgKind::Probe), 2);
        assert_eq!(a.kind_totals(), [2, 0, 1, 0]);
    }

    #[test]
    fn json_export_is_complete_and_deterministic() {
        let tree = Tree::path(2);
        let mut s = MsgStats::new(&tree);
        s.record(tree.dir_edge_index(NodeId(1), NodeId(0)), MsgKind::Probe);
        s.record(tree.dir_edge_index(NodeId(0), NodeId(1)), MsgKind::Response);
        let json = s.to_json(&tree);
        assert!(json.contains("\"total\": 2"));
        assert!(json.contains(
            "\"by_kind\": {\"probe\": 1, \"response\": 1, \"update\": 0, \"release\": 0}"
        ));
        // Both directed edges appear, even the all-zero counters.
        assert!(json.contains("\"from\": 0, \"to\": 1"));
        assert!(json.contains("\"from\": 1, \"to\": 0"));
        assert_eq!(json, s.to_json(&tree));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
