//! Execution traces: a replayable, printable event log.
//!
//! Wraps an [`Engine`] drive loop and records every request initiation
//! and message delivery (sender, receiver, kind, causal depth). Useful
//! for debugging policies, for teaching (the quickstart walkthrough in
//! `examples/trace_walkthrough.rs` prints one), and for regression tests
//! that pin down exact message flows.

use oat_core::agg::AggOp;
use oat_core::mechanism::CombineOutcome;
use oat_core::message::MsgKind;
use oat_core::policy::PolicySpec;
use oat_core::request::{ReqOp, Request};
use oat_core::tree::NodeId;

use crate::engine::Engine;

/// One trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent<V> {
    /// A request was initiated.
    Initiate {
        /// Index in the driving sequence.
        seq_index: usize,
        /// Requesting node.
        node: NodeId,
        /// True for writes.
        is_write: bool,
    },
    /// A message was delivered.
    Deliver {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Message kind.
        kind: MsgKind,
        /// Causal depth (hops).
        depth: u32,
    },
    /// A combine completed at `node` with `value`.
    Complete {
        /// Requesting node.
        node: NodeId,
        /// Returned aggregate.
        value: V,
    },
}

/// A recorded sequential execution.
pub struct Trace<V> {
    /// Events in order.
    pub events: Vec<TraceEvent<V>>,
}

impl<V: std::fmt::Debug> Trace<V> {
    /// Renders the trace as indented text (requests flush left,
    /// deliveries indented by causal depth).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.events {
            match e {
                TraceEvent::Initiate {
                    seq_index,
                    node,
                    is_write,
                } => {
                    let kind = if *is_write { "write" } else { "combine" };
                    let _ = writeln!(out, "[{seq_index}] {kind} at {node}");
                }
                TraceEvent::Deliver {
                    from,
                    to,
                    kind,
                    depth,
                } => {
                    let _ = writeln!(
                        out,
                        "{:indent$}{} -> {}: {}",
                        "",
                        from,
                        to,
                        kind.name(),
                        indent = (*depth as usize) * 2
                    );
                }
                TraceEvent::Complete { node, value } => {
                    let _ = writeln!(out, "    => {node} returns {value:?}");
                }
            }
        }
        out
    }

    /// Count of delivered messages of one kind.
    pub fn count(&self, kind: MsgKind) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Deliver { kind: k, .. } if *k == kind))
            .count()
    }
}

/// Executes `seq` sequentially on `engine`, recording every event.
///
/// The engine must be quiescent; the run leaves it quiescent.
///
/// ```
/// use oat_core::{agg::SumI64, policy::rww::RwwSpec, request::Request, tree::{NodeId, Tree}};
/// use oat_sim::{trace::record_sequential, Engine, Schedule};
///
/// let mut eng = Engine::new(Tree::pair(), SumI64, &RwwSpec, Schedule::Fifo, false);
/// let trace = record_sequential(&mut eng, &[Request::combine(NodeId(0))]);
/// assert!(trace.render().contains("n0 -> n1: probe"));
/// ```
pub fn record_sequential<S: PolicySpec, A: AggOp>(
    engine: &mut Engine<S, A>,
    seq: &[Request<A::Value>],
) -> Trace<A::Value> {
    assert!(engine.is_quiescent());
    let mut events = Vec::new();
    for (i, q) in seq.iter().enumerate() {
        events.push(TraceEvent::Initiate {
            seq_index: i,
            node: q.node,
            is_write: q.op.is_write(),
        });
        let done_now = match &q.op {
            ReqOp::Write(arg) => {
                engine.initiate_write(q.node, arg.clone());
                None
            }
            ReqOp::Combine => match engine.initiate_combine(q.node) {
                CombineOutcome::Done(v) => Some(v),
                CombineOutcome::Pending => None,
                CombineOutcome::Coalesced => unreachable!("sequential execution"),
            },
        };
        while let Some(d) = engine.deliver_next() {
            events.push(TraceEvent::Deliver {
                from: d.from,
                to: d.node,
                kind: d.kind,
                depth: d.depth,
            });
            if let Some(v) = d.completed {
                events.push(TraceEvent::Complete {
                    node: d.node,
                    value: v,
                });
            }
        }
        if let Some(v) = done_now {
            events.push(TraceEvent::Complete {
                node: q.node,
                value: v,
            });
        }
    }
    Trace { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use oat_core::agg::SumI64;
    use oat_core::policy::rww::RwwSpec;
    use oat_core::tree::Tree;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn trace_records_probe_response_roundtrip() {
        let tree = Tree::pair();
        let mut eng: Engine<RwwSpec, SumI64> =
            Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
        let seq = vec![Request::write(n(1), 5), Request::combine(n(0))];
        let trace = record_sequential(&mut eng, &seq);
        assert_eq!(trace.count(MsgKind::Probe), 1);
        assert_eq!(trace.count(MsgKind::Response), 1);
        let rendered = trace.render();
        assert!(rendered.contains("combine at n0"));
        assert!(rendered.contains("n0 -> n1: probe"));
        assert!(rendered.contains("n1 -> n0: response"));
        assert!(rendered.contains("=> n0 returns 5"));
    }

    #[test]
    fn trace_depth_indentation_reflects_cascades() {
        let tree = Tree::path(4);
        let mut eng: Engine<RwwSpec, SumI64> =
            Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
        let seq = vec![Request::combine(n(0)), Request::write(n(3), 7)];
        let trace = record_sequential(&mut eng, &seq);
        // The write's update cascade has depths 1, 2, 3.
        let depths: Vec<u32> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Deliver {
                    kind: MsgKind::Update,
                    depth,
                    ..
                } => Some(*depth),
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![1, 2, 3]);
    }
}
