//! The simulated tree network.
//!
//! An [`Engine`] instantiates one [`MechNode`] per tree node and one FIFO
//! queue per directed edge (the paper's reliable FIFO channels). Drivers
//! initiate requests ([`Engine::initiate_combine`] /
//! [`Engine::initiate_write`]) and pump message deliveries
//! ([`Engine::deliver_next`], [`Engine::run_to_quiescence`]); the engine
//! records every sent message in [`MsgStats`].

use std::collections::VecDeque;

use oat_core::agg::AggOp;
use oat_core::fault::{EdgeFaults, FaultAction, FaultPlan, InjectedFaults};
use oat_core::mechanism::{CombineOutcome, MechNode, Outbox};
use oat_core::message::Message;
use oat_core::policy::PolicySpec;
use oat_core::tree::{NodeId, Tree};

use crate::schedule::{Schedule, SchedulerState};
use crate::stats::MsgStats;

/// One message delivery: the receiving node, any combine it completed
/// there, and the causal depth of the delivered message (1 = sent
/// directly by a request's initiation, `d+1` = sent while handling a
/// depth-`d` message). Depth is the hop count of the causal chain and
/// therefore the latency measure of the network model: a combine answered
/// by a depth-`d` response took `d` sequential hops.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery<V> {
    /// Node that sent the message.
    pub from: NodeId,
    /// Node that processed the message.
    pub node: NodeId,
    /// Kind of the delivered message.
    pub kind: oat_core::message::MsgKind,
    /// Value of a locally initiated combine that completed, if any.
    pub completed: Option<V>,
    /// Causal depth (hops) of the delivered message.
    pub depth: u32,
}

/// A simulated tree network running one lease-based algorithm.
///
/// ```
/// use oat_core::{agg::SumI64, policy::rww::RwwSpec, tree::{NodeId, Tree}};
/// use oat_sim::{Engine, Schedule};
///
/// let mut eng = Engine::new(Tree::path(3), SumI64, &RwwSpec, Schedule::Fifo, false);
/// eng.initiate_write(NodeId(2), 9);
/// eng.run_to_quiescence();             // writes are silent without leases
/// assert_eq!(eng.stats().total(), 0);
///
/// eng.initiate_combine(NodeId(0));     // cold read probes the tree
/// let done = eng.run_to_quiescence();
/// assert_eq!(done, vec![(NodeId(0), 9)]);
/// assert_eq!(eng.stats().total(), 4);  // 2 probes + 2 responses
/// ```
pub struct Engine<S: PolicySpec, A: AggOp> {
    tree: Tree,
    op: A,
    nodes: Vec<MechNode<S::Node, A>>,
    chans: Vec<VecDeque<(Message<A::Value>, u32)>>,
    /// One token per undelivered message, in global send order; each token
    /// names the directed edge whose channel head it refers to.
    ///
    /// Tokens consumed out of band (by [`Engine::deliver_from`] /
    /// [`Engine::drop_one`]) are deleted *lazily*: the edge's entry in
    /// `stale_tokens` is bumped instead of scanning the deque, and
    /// [`Engine::deliver_next`] skips that many tokens for the edge as it
    /// pops them. Removal is therefore O(1), which matters to the model
    /// checker — it delivers almost exclusively through `deliver_from`.
    tokens: VecDeque<usize>,
    /// Per-directed-edge count of tokens in `tokens` that refer to
    /// already-consumed messages (lazy deletions pending).
    stale_tokens: Vec<u64>,
    /// Undelivered messages: `tokens.len()` minus all pending deletions.
    live_tokens: usize,
    sched: SchedulerState,
    stats: MsgStats,
    scratch: Outbox<A::Value>,
    /// Maximum delivered depth since the last [`Engine::reset_depth_window`].
    window_max_depth: u32,
    /// Seeded fault injection, when armed via [`Engine::set_fault_plan`].
    /// `None` is the reliable network — the hot path pays one branch.
    faults: Option<SimFaults>,
}

/// Armed fault state: one decision stream per directed edge, plus the
/// ledger of everything injected so far.
struct SimFaults {
    streams: Vec<EdgeFaults>,
    ledger: InjectedFaults,
}

impl<S: PolicySpec, A: AggOp> Clone for Engine<S, A>
where
    S::Node: Clone,
{
    fn clone(&self) -> Self {
        Engine {
            tree: self.tree.clone(),
            op: self.op.clone(),
            nodes: self.nodes.clone(),
            chans: self.chans.clone(),
            tokens: self.tokens.clone(),
            stale_tokens: self.stale_tokens.clone(),
            live_tokens: self.live_tokens,
            sched: self.sched.clone(),
            stats: self.stats.clone(),
            scratch: Vec::new(),
            window_max_depth: self.window_max_depth,
            // The model checker (the only cloner) explores reliable
            // networks; an armed plan does not survive a clone.
            faults: None,
        }
    }
}

impl<S: PolicySpec, A: AggOp> Engine<S, A>
where
    S::Node: std::hash::Hash,
    A::Value: std::hash::Hash,
{
    /// Feeds the complete observable network state (every node's
    /// mechanism + policy + ghost state, and every channel's contents)
    /// into a hasher. Two engines with equal hashes behave identically
    /// under identical future inputs; the model checker uses this to
    /// deduplicate its state space. Message depths are included so
    /// latency-observable differences are not conflated.
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        for node in &self.nodes {
            node.hash_state(h);
        }
        for chan in &self.chans {
            chan.len().hash(h);
            for (msg, depth) in chan {
                msg.hash(h);
                depth.hash(h);
            }
        }
    }
}

impl<S: PolicySpec, A: AggOp> Engine<S, A> {
    /// Builds the network in the paper's initial state.
    ///
    /// `ghost` enables the Section-5 ghost logs (needed by the causal
    /// consistency checker; costs memory proportional to history length).
    pub fn new(tree: Tree, op: A, spec: &S, schedule: Schedule, ghost: bool) -> Self {
        let nodes = tree
            .nodes()
            .map(|u| MechNode::new(&tree, u, op.clone(), spec.build(tree.degree(u)), ghost))
            .collect();
        let chans = vec![VecDeque::new(); tree.num_dir_edges()];
        let stats = MsgStats::new(&tree);
        Engine {
            op,
            nodes,
            chans,
            tokens: VecDeque::new(),
            stale_tokens: vec![0; tree.num_dir_edges()],
            live_tokens: 0,
            sched: schedule.state(),
            stats,
            scratch: Vec::new(),
            window_max_depth: 0,
            faults: None,
            tree,
        }
    }

    /// Arms a seeded [`FaultPlan`]: subsequent deliveries consult the
    /// plan's per-directed-edge decision streams and may drop, duplicate,
    /// or delay messages *on the wire* — the mechanism underneath is not
    /// told, so the run demonstrates exactly what the paper's reliable
    /// FIFO assumption buys. The kill/crash schedules are transport
    /// concepts and are ignored here (the TCP runtime consumes them).
    /// An empty plan disarms injection entirely.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            self.faults = None;
            return;
        }
        let streams = (0..self.tree.num_dir_edges())
            .map(|e| {
                let (from, to) = self.tree.dir_edge(e);
                plan.edge_stream(from, to)
            })
            .collect();
        self.faults = Some(SimFaults {
            streams,
            ledger: InjectedFaults::default(),
        });
    }

    /// The injected-fault ledger, when a plan is armed.
    pub fn injected(&self) -> Option<&InjectedFaults> {
        self.faults.as_ref().map(|f| &f.ledger)
    }

    /// Pre-establishes leases in both directions on every edge (a valid
    /// warm quiescent state; models Astrolabe-style push-all operation).
    pub fn prewarm_leases(&mut self) {
        for node in &mut self.nodes {
            node.prewarm_leases();
        }
    }

    /// The topology.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Message counters so far.
    pub fn stats(&self) -> &MsgStats {
        &self.stats
    }

    /// JSON export of the per-edge, per-kind message counters — the same
    /// shape `oat_net::Cluster::stats_json` produces, so simulator and TCP
    /// trajectories diff cleanly.
    pub fn stats_json(&self) -> String {
        self.stats.to_json(&self.tree)
    }

    /// The node automaton for `u`.
    pub fn node(&self, u: NodeId) -> &MechNode<S::Node, A> {
        &self.nodes[u.idx()]
    }

    /// Number of undelivered messages.
    pub fn in_flight(&self) -> usize {
        self.live_tokens
    }

    /// True when no message is in transit (conditions (1)/(2) of the
    /// paper's quiescent state; condition (3) is the driver's business).
    pub fn is_quiescent(&self) -> bool {
        self.live_tokens == 0
    }

    /// The true global aggregate over current local values — the value a
    /// strictly consistent combine must return (the oracle `f(A(σ,q))`).
    pub fn global_oracle(&self) -> A::Value {
        let mut x = self.op.identity();
        for node in &self.nodes {
            x = self.op.combine(&x, node.val());
        }
        x
    }

    /// Initiates a combine request at `u` (`T1`).
    pub fn initiate_combine(&mut self, u: NodeId) -> CombineOutcome<A::Value> {
        oat_obs::trace_event!(oat_obs::EventKind::SimInitiate, u.0, 0, 0);
        let outcome = {
            let node = &mut self.nodes[u.idx()];
            node.handle_combine(&mut self.scratch)
        };
        self.route_scratch(u, 1);
        outcome
    }

    /// Initiates a write request at `u` (`T2`).
    pub fn initiate_write(&mut self, u: NodeId, arg: A::Value) {
        oat_obs::trace_event!(oat_obs::EventKind::SimInitiate, u.0, 0, 1);
        {
            let node = &mut self.nodes[u.idx()];
            node.handle_write(arg, &mut self.scratch);
        }
        self.route_scratch(u, 1);
    }

    /// Maximum message depth delivered since the last reset — the hop
    /// latency of the busiest causal chain in the window.
    pub fn window_max_depth(&self) -> u32 {
        self.window_max_depth
    }

    /// Resets the depth window (typically at each request boundary).
    pub fn reset_depth_window(&mut self) {
        self.window_max_depth = 0;
    }

    /// Delivers the next message according to the schedule.
    ///
    /// `None` when no message is in flight.
    pub fn deliver_next(&mut self) -> Option<Delivery<A::Value>> {
        let mut deferrals = 0usize;
        let edge = loop {
            if self.live_tokens == 0 {
                return None;
            }
            let pos = self.sched.pick(self.tokens.len());
            let edge = if pos == 0 {
                self.tokens.pop_front().expect("tokens non-empty")
            } else {
                self.tokens
                    .swap_remove_back(pos)
                    .expect("token index in range")
            };
            // Skip tokens whose message was consumed out of band; for an
            // edge, the first token popped is its oldest, which is exactly
            // the message `deliver_from`/`drop_one` took — so lazy
            // deletion preserves per-edge FIFO alignment.
            if self.stale_tokens[edge] > 0 {
                self.stale_tokens[edge] -= 1;
                continue;
            }
            if let Some(f) = self.faults.as_mut() {
                use std::sync::atomic::Ordering::Relaxed;
                match f.streams[edge].next_action() {
                    FaultAction::Deliver => {}
                    FaultAction::Drop => {
                        // The popped token was this edge's oldest, so
                        // dropping the channel head keeps them aligned.
                        self.chans[edge].pop_front().expect("token implies message");
                        self.live_tokens -= 1;
                        f.ledger.drops.fetch_add(1, Relaxed);
                        continue;
                    }
                    FaultAction::Duplicate => {
                        // Clone the head in place and mint a token for
                        // it; the original is delivered now, the twin on
                        // a later pick. Stats are *not* recorded — the
                        // duplicate is a wire artifact, not a send.
                        let twin = self.chans[edge]
                            .front()
                            .cloned()
                            .expect("token implies message");
                        self.chans[edge].push_front(twin);
                        self.tokens.push_back(edge);
                        self.live_tokens += 1;
                        f.ledger.dups.fetch_add(1, Relaxed);
                    }
                    FaultAction::Delay if deferrals < self.live_tokens => {
                        // Defer the whole edge: its head stays put and
                        // the token goes to the back of the pick order,
                        // so per-edge FIFO is preserved.
                        deferrals += 1;
                        self.tokens.push_back(edge);
                        f.ledger.delays.fetch_add(1, Relaxed);
                        continue;
                    }
                    FaultAction::Delay => {
                        // Every live token has already been deferred
                        // during this pick (possible when delay_p is at
                        // or near 1.0): force delivery so the pick loop
                        // terminates. Not ledgered — no delay happened.
                    }
                }
            }
            break edge;
        };
        self.live_tokens -= 1;
        let (from, to) = self.tree.dir_edge(edge);
        let (msg, depth) = self.chans[edge]
            .pop_front()
            .expect("token implies pending message");
        self.window_max_depth = self.window_max_depth.max(depth);
        let kind = msg.kind();
        oat_obs::trace_event!(
            oat_obs::EventKind::SimDeliver,
            from.0,
            to.0,
            kind.index() as u64
        );
        let completed = {
            let node = &mut self.nodes[to.idx()];
            node.handle_message(from, msg, &mut self.scratch)
        };
        self.route_scratch(to, depth + 1);
        Some(Delivery {
            from,
            node: to,
            kind,
            completed,
            depth,
        })
    }

    /// Delivers messages until the network is quiescent; returns every
    /// `(node, value)` combine completion observed on the way.
    pub fn run_to_quiescence(&mut self) -> Vec<(NodeId, A::Value)> {
        let mut done = Vec::new();
        while let Some(d) = self.deliver_next() {
            if let Some(v) = d.completed {
                done.push((d.node, v));
            }
        }
        done
    }

    /// Directed edges with at least one undelivered message, in dense
    /// edge-index order. The model checker branches over these.
    pub fn nonempty_channels(&self) -> Vec<(NodeId, NodeId)> {
        self.chans
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(i, _)| self.tree.dir_edge(i))
            .collect()
    }

    /// Delivers the head message of the specific channel `from → to`
    /// (bypassing the schedule); `None` when that channel is empty.
    ///
    /// Per-channel FIFO order is preserved — this only overrides the
    /// *cross-channel* choice, which the network model leaves free.
    pub fn deliver_from(&mut self, from: NodeId, to: NodeId) -> Option<Delivery<A::Value>> {
        let edge = self.tree.dir_edge_index(from, to);
        let (msg, depth) = self.chans[edge].pop_front()?;
        // O(1) lazy token deletion: deliver_next skips one token for this
        // edge instead of us scanning the deque here.
        self.stale_tokens[edge] += 1;
        self.live_tokens -= 1;
        self.window_max_depth = self.window_max_depth.max(depth);
        let kind = msg.kind();
        let completed = {
            let node = &mut self.nodes[to.idx()];
            node.handle_message(from, msg, &mut self.scratch)
        };
        self.route_scratch(to, depth + 1);
        Some(Delivery {
            from,
            node: to,
            kind,
            completed,
            depth,
        })
    }

    /// Drops the oldest undelivered message on the directed edge
    /// `from → to` without delivering it; returns its kind, or `None`
    /// when nothing was in flight there.
    ///
    /// **Fault injection for tests only.** The paper's network model
    /// (Section 2) assumes reliable FIFO channels, and the mechanism's
    /// guarantees genuinely depend on it — the test suite uses this hook
    /// to demonstrate that a single lost `update` produces a stale
    /// (strict-consistency-violating) read.
    pub fn drop_one(&mut self, from: NodeId, to: NodeId) -> Option<oat_core::message::MsgKind> {
        let edge = self.tree.dir_edge_index(from, to);
        let (msg, _) = self.chans[edge].pop_front()?;
        self.stale_tokens[edge] += 1;
        self.live_tokens -= 1;
        Some(msg.kind())
    }

    /// Routes everything the last handler emitted, tagging each message
    /// with causal depth `depth`. Drains the outbox in place so its
    /// allocation is reused across handlers — the per-delivery hot path
    /// allocates nothing once the outbox has grown to the working size.
    fn route_scratch(&mut self, from: NodeId, depth: u32) {
        for (to, msg) in self.scratch.drain(..) {
            let edge = self.tree.dir_edge_index(from, to);
            self.stats.record(edge, msg.kind());
            self.tokens.push_back(edge);
            self.live_tokens += 1;
            self.chans[edge].push_back((msg, depth));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;
    use oat_core::policy::rww::RwwSpec;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn combine_on_cold_path_probes_whole_tree() {
        // MDS-style first combine: probes flood to all n-1 other nodes and
        // responses flow back: 2(n-1) messages.
        let tree = Tree::path(5);
        let mut eng = Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
        for i in 0..5u32 {
            eng.initiate_write(n(i), i as i64 + 1);
        }
        assert!(eng.is_quiescent(), "writes without leases send nothing");
        let outcome = eng.initiate_combine(n(0));
        assert!(matches!(outcome, CombineOutcome::Pending));
        let done = eng.run_to_quiescence();
        assert_eq!(done, vec![(n(0), 15)]);
        assert_eq!(eng.stats().total(), 8, "4 probes + 4 responses");
    }

    #[test]
    fn second_combine_at_same_node_is_free() {
        let tree = Tree::path(4);
        let mut eng = Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
        eng.initiate_combine(n(0));
        eng.run_to_quiescence();
        let before = eng.stats().total();
        match eng.initiate_combine(n(0)) {
            CombineOutcome::Done(v) => assert_eq!(v, 0),
            o => panic!("expected local completion, got {o:?}"),
        }
        assert_eq!(eng.stats().total(), before, "leases answer locally");
    }

    #[test]
    fn write_after_combine_pushes_updates_down_lease_graph() {
        let tree = Tree::path(3);
        let mut eng = Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
        eng.initiate_combine(n(0));
        eng.run_to_quiescence();
        let before = eng.stats().total();
        eng.initiate_write(n(2), 9);
        eng.run_to_quiescence();
        // Update 2->1 then 1->0: 2 messages, no releases on first write.
        assert_eq!(eng.stats().total() - before, 2);
        match eng.initiate_combine(n(0)) {
            CombineOutcome::Done(v) => assert_eq!(v, 9),
            o => panic!("expected Done, got {o:?}"),
        }
    }

    #[test]
    fn prewarmed_engine_answers_combines_locally_everywhere() {
        let tree = Tree::star(6);
        let mut eng = Engine::new(tree, SumI64, &RwwSpec, Schedule::Fifo, false);
        eng.prewarm_leases();
        for i in 0..6u32 {
            match eng.initiate_combine(n(i)) {
                CombineOutcome::Done(v) => assert_eq!(v, 0),
                o => panic!("expected Done at {i}, got {o:?}"),
            }
        }
        assert_eq!(eng.stats().total(), 0);
    }

    #[test]
    fn empty_fault_plan_is_disarmed() {
        let mut eng = Engine::new(Tree::path(3), SumI64, &RwwSpec, Schedule::Fifo, false);
        eng.set_fault_plan(&oat_core::FaultPlan::default());
        assert!(eng.injected().is_none(), "empty plan must cost nothing");
        eng.initiate_combine(n(0));
        let done = eng.run_to_quiescence();
        assert_eq!(done, vec![(n(0), 0)]);
    }

    #[test]
    fn dropped_update_produces_a_stale_read() {
        // The reliable-FIFO assumption is load-bearing: establish leases,
        // then lose the update traffic on the wire and watch a combine
        // return a value that is not the global oracle.
        let mut eng = Engine::new(Tree::path(3), SumI64, &RwwSpec, Schedule::Fifo, false);
        eng.initiate_combine(n(0));
        eng.run_to_quiescence();
        let plan = oat_core::FaultPlan {
            seed: 1,
            drop_p: 1.0,
            ..Default::default()
        };
        eng.set_fault_plan(&plan);
        eng.initiate_write(n(2), 9);
        eng.run_to_quiescence();
        let ledger = eng.injected().expect("plan armed");
        assert!(ledger.snapshot().0 > 0, "updates were dropped");
        match eng.initiate_combine(n(0)) {
            CombineOutcome::Done(v) => {
                assert_eq!(v, 0, "stale: the dropped update never arrived");
                assert_ne!(v, eng.global_oracle(), "strict consistency violated");
            }
            o => panic!("leases held, expected local Done, got {o:?}"),
        }
    }

    #[test]
    fn delay_probability_one_still_terminates() {
        // Every pick draws Delay; the bounded-deferral rule must force
        // delivery after one full token cycle instead of livelocking
        // the pick loop. Delays only defer — nothing is lost — so the
        // combine still returns the oracle.
        let mut eng = Engine::new(Tree::kary(7, 2), SumI64, &RwwSpec, Schedule::Fifo, false);
        let plan = oat_core::FaultPlan {
            seed: 3,
            delay_p: 1.0,
            ..Default::default()
        };
        eng.set_fault_plan(&plan);
        eng.initiate_write(n(6), 5);
        eng.run_to_quiescence();
        eng.initiate_combine(n(0));
        let done = eng.run_to_quiescence();
        assert_eq!(done, vec![(n(0), 5)]);
        let (_, _, delays, _, _) = eng.injected().expect("plan armed").snapshot();
        assert!(delays > 0, "deferrals must be ledgered before the bound");
    }

    #[test]
    fn faulty_runs_are_seed_deterministic() {
        let run = |seed: u64| {
            let mut eng = Engine::new(Tree::kary(7, 2), SumI64, &RwwSpec, Schedule::Fifo, false);
            let plan = oat_core::FaultPlan {
                seed,
                drop_p: 0.2,
                dup_p: 0.2,
                delay_p: 0.2,
                ..Default::default()
            };
            eng.set_fault_plan(&plan);
            for i in 0..7u32 {
                eng.initiate_write(n(i), i as i64);
                eng.run_to_quiescence();
                eng.initiate_combine(n(i % 3));
                eng.run_to_quiescence();
            }
            let led = eng.injected().unwrap().snapshot();
            (led, eng.stats().total())
        };
        let a = run(5);
        assert_eq!(a, run(5), "same seed, same injected faults");
        assert!(a.0 .0 + a.0 .1 + a.0 .2 > 0, "plan actually fired");
        assert_ne!(a, run(6), "different seed, different trajectory");
    }

    #[test]
    fn random_schedule_same_results_as_fifo_sequentially() {
        let tree = Tree::kary(7, 2);
        let mut results = Vec::new();
        for sched in [Schedule::Fifo, Schedule::Random(1), Schedule::Random(99)] {
            let mut eng = Engine::new(tree.clone(), SumI64, &RwwSpec, sched, false);
            eng.initiate_write(n(3), 100);
            eng.run_to_quiescence();
            eng.initiate_combine(n(6));
            let done = eng.run_to_quiescence();
            eng.initiate_write(n(4), 50);
            eng.run_to_quiescence();
            eng.initiate_combine(n(6));
            let done2 = eng.run_to_quiescence();
            results.push((done, done2, eng.stats().total()));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }
}
