//! # oat-concurrent — the lease mechanism on real threads
//!
//! The deterministic simulator (`oat-sim`) interleaves deliveries with a
//! seeded scheduler; this crate runs the *same* Figure-1 node automata on
//! one OS thread per tree node, with crossbeam channels as the reliable
//! FIFO links. Races here are real: request injection overlaps message
//! processing arbitrarily, exercising the concurrent-execution semantics
//! of Section 5 under genuine parallelism.
//!
//! Ghost logs are always enabled; the run result feeds directly into
//! `oat_consistency::check_causal` (Theorem 4: any lease-based algorithm
//! is causally consistent — including under these schedules).
//!
//! ## Quiescence detection
//!
//! A shared atomic counts undelivered envelopes: incremented before every
//! send, decremented after the receiving node finishes handling one
//! (having first incremented for anything it sent in turn). The counter
//! therefore only reads zero when no envelope is queued *and* no handler
//! is mid-flight — a global quiescent state. The driver then shuts the
//! node threads down and collects their final state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use oat_core::agg::AggOp;
use oat_core::ghost::GhostReq;
use oat_core::mechanism::{CombineOutcome, MechNode, Outbox};
use oat_core::message::Message;
use oat_core::policy::PolicySpec;
use oat_core::request::{ReqOp, Request};
use oat_core::tree::{NodeId, Tree};

/// One envelope on a node's incoming channel.
enum Envelope<V> {
    /// A network message from a neighbour.
    Net { from: NodeId, msg: Message<V> },
    /// A locally initiated request.
    Request(ReqOp<V>),
    /// Terminate and report state.
    Shutdown,
}

/// A node thread's final state: its ghost log and combine completions.
type NodeOutcome<V> = (Vec<GhostReq<V>>, Vec<(NodeId, V)>);

/// Result of a threaded run.
pub struct ThreadedRunResult<V> {
    /// Per-node ghost logs (input to the causal checker).
    pub logs: Vec<Vec<GhostReq<V>>>,
    /// Combine completions `(node, value)` across all nodes, in each
    /// node's local completion order (global order is unspecified).
    pub combine_values: Vec<(NodeId, V)>,
    /// Network messages delivered (excludes request envelopes).
    pub messages_delivered: u64,
}

/// Runs `seq` on one thread per node.
///
/// Requests are injected in sequence order; `inject_gap` optionally
/// spaces injections (None = full blast, maximal concurrency). The
/// function returns once the network is globally quiescent and all
/// threads have shut down.
pub fn run_threaded<S: PolicySpec, A: AggOp>(
    tree: &Tree,
    op: A,
    spec: &S,
    seq: &[Request<A::Value>],
    inject_gap: Option<Duration>,
) -> ThreadedRunResult<A::Value> {
    let n = tree.len();
    let mut senders: Vec<Sender<Envelope<A::Value>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Envelope<A::Value>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let in_flight = Arc::new(AtomicI64::new(0));
    let delivered = Arc::new(AtomicI64::new(0));

    let results: Vec<NodeOutcome<A::Value>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for u in tree.nodes() {
            let rx = receivers[u.idx()].take().expect("receiver unused");
            let senders = senders.clone();
            let in_flight = Arc::clone(&in_flight);
            let delivered = Arc::clone(&delivered);
            let op = op.clone();
            let node_policy = spec.build(tree.degree(u));
            let tree = tree.clone();
            handles.push(scope.spawn(move || {
                node_main::<S, A>(tree, u, op, node_policy, rx, senders, in_flight, delivered)
            }));
        }

        // Drive: inject requests, then wait for quiescence.
        for q in seq {
            in_flight.fetch_add(1, Ordering::SeqCst);
            senders[q.node.idx()]
                .send(Envelope::Request(q.op.clone()))
                .expect("node thread alive");
            if let Some(gap) = inject_gap {
                std::thread::sleep(gap);
            }
        }
        while in_flight.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        for tx in &senders {
            tx.send(Envelope::Shutdown).expect("node thread alive");
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    });

    let mut logs = Vec::with_capacity(n);
    let mut combine_values = Vec::new();
    for (log, completions) in results {
        logs.push(log);
        combine_values.extend(completions);
    }
    ThreadedRunResult {
        logs,
        combine_values,
        messages_delivered: delivered.load(Ordering::SeqCst) as u64,
    }
}

#[allow(clippy::too_many_arguments)]
fn node_main<S: PolicySpec, A: AggOp>(
    tree: Tree,
    id: NodeId,
    op: A,
    policy: S::Node,
    rx: Receiver<Envelope<A::Value>>,
    senders: Vec<Sender<Envelope<A::Value>>>,
    in_flight: Arc<AtomicI64>,
    delivered: Arc<AtomicI64>,
) -> NodeOutcome<A::Value> {
    let mut node: MechNode<S::Node, A> = MechNode::new(&tree, id, op, policy, true);
    let mut out: Outbox<A::Value> = Vec::new();
    let mut completions: Vec<(NodeId, A::Value)> = Vec::new();
    let mut outstanding_combines = 0usize;

    loop {
        let env = rx.recv().expect("driver holds a sender");
        match env {
            Envelope::Shutdown => break,
            Envelope::Request(opq) => {
                match opq {
                    ReqOp::Write(arg) => node.handle_write(arg, &mut out),
                    ReqOp::Combine => match node.handle_combine(&mut out) {
                        CombineOutcome::Done(v) => completions.push((id, v)),
                        CombineOutcome::Pending | CombineOutcome::Coalesced => {
                            outstanding_combines += 1;
                        }
                    },
                }
                flush(id, &mut out, &senders, &in_flight);
                in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            Envelope::Net { from, msg } => {
                delivered.fetch_add(1, Ordering::SeqCst);
                let completed = node.handle_message(from, msg, &mut out);
                flush(id, &mut out, &senders, &in_flight);
                if let Some(v) = completed {
                    // All coalesced local combines complete together.
                    for _ in 0..outstanding_combines {
                        completions.push((id, v.clone()));
                    }
                    outstanding_combines = 0;
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    assert_eq!(
        outstanding_combines, 0,
        "node {id} shut down with incomplete combines"
    );
    (
        node.ghost().expect("ghost enabled").log.clone(),
        completions,
    )
}

/// Sends everything in `out`, incrementing the in-flight counter *before*
/// each send so the counter can only reach zero at true quiescence.
fn flush<V>(
    from: NodeId,
    out: &mut Outbox<V>,
    senders: &[Sender<Envelope<V>>],
    in_flight: &AtomicI64,
) {
    for (to, msg) in out.drain(..) {
        in_flight.fetch_add(1, Ordering::SeqCst);
        senders[to.idx()]
            .send(Envelope::Net { from, msg })
            .expect("peer thread alive until shutdown");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::agg::SumI64;
    use oat_core::policy::rww::RwwSpec;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn sequentialish_run_returns_correct_sums() {
        // With a generous injection gap the run is effectively
        // sequential, so combines must be strictly consistent.
        let tree = Tree::path(4);
        let seq = vec![
            Request::write(n(0), 5),
            Request::write(n(3), 7),
            Request::combine(n(1)),
            Request::write(n(2), 1),
            Request::combine(n(3)),
        ];
        let res = run_threaded(
            &tree,
            SumI64,
            &RwwSpec,
            &seq,
            Some(Duration::from_millis(25)),
        );
        let mut values: Vec<i64> = res.combine_values.iter().map(|(_, v)| *v).collect();
        values.sort_unstable();
        assert_eq!(values, vec![12, 13]);
    }

    #[test]
    fn full_blast_run_completes_all_combines() {
        let tree = Tree::kary(7, 2);
        let mut seq = Vec::new();
        for i in 0..40u32 {
            let node = n(i % 7);
            if i % 3 == 0 {
                seq.push(Request::combine(node));
            } else {
                seq.push(Request::write(node, i as i64));
            }
        }
        let expected_combines = seq.iter().filter(|q| q.op.is_combine()).count();
        let res = run_threaded(&tree, SumI64, &RwwSpec, &seq, None);
        assert_eq!(res.combine_values.len(), expected_combines);
        assert_eq!(res.logs.len(), 7);
    }

    #[test]
    fn threaded_histories_are_causally_consistent() {
        let tree = Tree::kary(9, 2);
        let mut seq = Vec::new();
        for i in 0..60u32 {
            let node = n((i * 5 + 2) % 9);
            if i % 2 == 0 {
                seq.push(Request::combine(node));
            } else {
                seq.push(Request::write(node, i as i64));
            }
        }
        let res = run_threaded(&tree, SumI64, &RwwSpec, &seq, None);
        oat_consistency::check_causal(&SumI64, &res.logs)
            .expect("threaded execution must be causally consistent");
    }
}
