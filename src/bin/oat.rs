//! `oat` — command-line driver for the aggregation simulator.
//!
//! ```text
//! oat run       --tree kary:64:2 --policy rww --workload uniform:0.5:1000 --seed 7
//! oat compare   --tree star:32 --workload zipf:0.3:2000:1.0
//! oat trace     --tree path:4 --script "c@0,w@3=10,w@3=20,c@0"
//! oat serve     --tree kary:15:2 --policy rww
//! oat bench-net --tree star:16 --workload uniform:0.5:500 [--json] [--check]
//!               [--pipeline N]
//! oat bench     [--tree SPEC] [--workload SPEC] [--depth N] [--quick]
//!               [--json] [--out PATH]
//! oat mlap      [--workload SPEC] [--policy SPEC] [--tree SPEC] [--seed N]
//!               [--json]
//! oat help
//! ```
//!
//! Specs:
//!
//! * tree: `pair` | `path:N` | `star:N` | `kary:N:K` | `random:N:SEED` |
//!   `caterpillar:SPINE:LEGS`
//! * policy: `rww` | `always` | `never` | `ab:A:B` | `randombreak:B:SEED`
//! * workload: `uniform:WF:LEN` | `hotspot:WF:LEN:READERS:WRITERS` |
//!   `zipf:WF:LEN:ALPHA` | `singlewriter:ROUNDS:WPR`
//! * script: comma-separated `c@NODE` (combine) and `w@NODE=VALUE`
//!   (write) items.

use oat::core::fault::{CrashNode, FaultPlan};
use oat::core::policy::ab::AbSpec;
use oat::core::policy::random::RandomBreakSpec;
use oat::net::{Cluster, DurabilityMode, NetConfig, WalConfig};
use oat::offline::nopt::nopt_total_lower_bound;
use oat::offline::opt_dp::opt_total_cost;
use oat::prelude::*;
use oat::sim::trace::record_sequential;
use oat::sim::viz::render_leases;
use oat::sim::{Engine, Schedule};
use oat_core::policy::PolicySpec;
use oat_core::request::{ReqOp, Request};
use std::io::BufRead;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench-net") => cmd_bench_net(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("mlap") => cmd_mlap(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("help") | None => {
            print!("{}", HELP);
            0
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{HELP}");
            2
        }
    };
    std::process::exit(code);
}

const HELP: &str = "\
oat — online aggregation over trees (IPPS 2007), simulator CLI

USAGE:
  oat run       --tree SPEC --policy SPEC --workload SPEC [--seed N]
  oat compare   --tree SPEC --workload SPEC [--seed N]
  oat trace     --tree SPEC [--policy SPEC] --script ITEMS
  oat trace     --tree SPEC --workload SPEC [--policy SPEC] [--seed N]
                [--pipeline N] [--faults SPEC] [--out PATH] [--chrome PATH]
  oat top       [--tree SPEC] [--workload SPEC] [--policy SPEC] [--seed N]
                [--pipeline N] [--interval-ms N] [--ticks N]
  oat serve     [--tree SPEC] [--policy SPEC] [--transport tcp|uds|ring]
  oat bench-net --tree SPEC --workload SPEC [--policy SPEC] [--seed N]
                [--json] [--check] [--pipeline N]
  oat bench     [--tree SPEC] [--workload SPEC] [--policy SPEC] [--seed N]
                [--depth N] [--batch N] [--transport tcp|uds|ring]
                [--threads N] [--sweep-depth A,B,C] [--quick]
                [--json] [--out PATH] [--trace [PATH]]
                [--durability memory|wal] [--fsync-every N]
  oat chaos     --tree SPEC --workload SPEC [--policy SPEC] [--seed N]
                [--faults SPEC] [--kill9 NODE@DELIVERED[,..]]
                [--transport tcp|uds|ring]
                [--durability memory|wal[:DIR]] [--fsync-every N]
                [--snapshot-every N]
  oat mlap      [--workload SPEC] [--policy SPEC] [--tree SPEC] [--seed N]
                [--json]
  oat query     SPEC [--tree SPEC] [--policy SPEC] [--facts N] [--keys K]
                [--stream uniform|zipf|phases] [--gap-ms N] [--seed N]
                [--transport tcp|uds|ring] [--json]
  oat help

SPECS:
  tree:     pair | path:N | star:N | kary:N:K | random:N:SEED | caterpillar:S:L
  policy:   rww | always | never | ab:A:B | randombreak:B:SEED
  workload: uniform:WF:LEN | hotspot:WF:LEN:READERS:WRITERS
            | zipf:WF:LEN:ALPHA | singlewriter:ROUNDS:WRITES_PER_ROUND
  script:   comma-separated c@NODE and w@NODE=VALUE items
  faults:   comma-separated seed:N | drop:P | dup:P | delay:P
            | kill:FROM-TO@FRAMES | crash:NODE@DELIVERED
            | kill9:NODE@DELIVERED | torn-tail:MAX | fsync-fail:P
            (or `none`)
  mlap workload: adv:DEPTH:LEGS | bursty:BURSTS:SIZE:WINDOW | delay:LEN:GAP
                 (bursty/delay run on --tree, default kary:15:2)
  mlap policy:   eager | odepth | odepth-prefetch | greedy | all
  query:         OP [group by key] [window last-N | tumbling(Tms)]
                 with OP one of sum | min | max | count

OBSERVABILITY (oat-obs event tracing):
  trace --workload  records a live oat-obs trace of one workload run twice
             (deterministic simulator, then pipelined TCP replay; --faults
             adds fault-category events) and writes it as oat-trace-v1
             JSONL (--out, default oat-trace.jsonl); --chrome PATH also
             writes Chrome trace_event JSON for chrome://tracing/Perfetto
  top        spawns a cluster, drives pipelined load in the background,
             and refreshes an in-place live view every --interval-ms
             (default 500) for --ticks refreshes (default 8): request
             rates, phase p50s from the live trace, per-category event
             counts, and the busiest nodes' queue/lease/fault counters

NET COMMANDS (oat-net TCP cluster on loopback):
  serve      spawns one server thread + TcpListener per tree node and reads
             commands from stdin: c@N | w@N=V | metrics [N] | stats | quit
  bench-net  replays a seeded workload against the cluster over TCP;
             --json emits per-edge/per-kind stats as JSON, --check verifies
             message-count parity against the deterministic simulator,
             --pipeline N replays again with the concurrent multi-client
             driver (one client per active node, N requests in flight each)
  bench      the measured baseline: runs one workload through the simulator,
             the sequential replay, the pipelined replay, and the
             batch-frame replay (--batch N requests per REQ_BATCH frame,
             default 32); reports req/s, msg/s, p50/p99/p999 latency and
             queue peaks, checks sim<->net parity, and writes
             BENCH_<date>.json (oat-bench-v4 schema; --transport selects
             the connection substrate for every cluster phase — tcp
             (default), uds, or in-process ring — --out overrides the
             path, --json also prints it, --quick shrinks the workload
             for CI smoke runs, --threads N sets the reactor pool
             serving the cluster phases, --sweep-depth 1,4,8,16 reruns
             the pipelined phase at each listed depth and records the
             throughput curve, --trace records the pipelined phase with
             oat-obs — adding the poll/queue/dispatch/wire phase
             breakdown to the JSON, printing per-edge wire latency, and,
             with --trace PATH, writing the raw oat-trace-v1 JSONL —
             and --durability wal puts every node on a write-ahead log
             in a fresh temp dir with group commit every --fsync-every
             records (default 8): the durability tax is the delta vs
             the default in-memory run, see EXPERIMENTS.md E19)
  chaos      replays a seeded workload sequentially while the transport is
             subjected to --faults (seeded drop/dup/delay, scheduled
             connection kills, scheduled node crash-restarts, process
             kills, and seeded disk faults); asserts every combine equals
             the running oracle, then reports the injection ledger,
             recovery counters, and WAL work, cross-checking that
             restarts == crashes + kill9s and (on a fresh WAL dir) that
             every WAL replay is a kill9 recovery; exits non-zero on any
             divergence or a wedged cluster. --kill9 N@D appends process
             kills to the plan; a kill9 needs durable state, so it
             defaults --durability to a WAL in a fresh temp dir
             (--durability wal:DIR pins the directory, --fsync-every and
             --snapshot-every tune group commit and log truncation)

MLAP (oat-mlap second problem family — multi-level aggregation with
delays and deadlines, arXiv:1507.02378 / arXiv:1701.01936):
  mlap       runs one or all online flush policies on a seeded MLAP
             workload, computes the exact offline optimum when the
             instance fits the oracle's candidate-time cap, and reports
             per-policy service/delay cost, deadline misses, flushes,
             messages, and the ratio vs OPT; --json emits a stable
             oat-mlap-v1 document. `oat bench --mlap` adds the same
             comparison as a bench phase (nullable `mlap` key in the
             oat-bench-v2 JSON)

QUERY (oat-query progressive online aggregation):
  query      runs one continuous query over a seeded fact stream
             (--stream uniform | zipf | phases; --facts/--keys/--gap-ms
             size it) against a live cluster. `group by key` multiplexes
             a forest of lazily-instantiated per-key trees over the one
             cluster; windows are either sliding (last-N facts, expired
             facts retired by refolding) or tumbling (fact-time windows,
             finalized exactly at each boundary). Prints every partial
             as it was emitted — value, coverage (monotone fraction of
             the stream applied), staleness bound, refinement seq — then
             the finals checked against the sequential oracle; exits
             non-zero on any mismatch or monotonicity violation. --json
             emits the stable oat-query-v1 document instead.
             `oat bench --query` runs the same engine as a bench phase
             and records refinement-latency percentiles (nullable
             `query` key in the oat-bench-v4 JSON)

EXAMPLES:
  oat run --tree kary:64:2 --policy rww --workload uniform:0.5:1000 --seed 7
  oat compare --tree star:32 --workload zipf:0.3:2000:1.0
  oat trace --tree path:4 --script \"c@0,w@3=10,w@3=20,c@0\"
  oat serve --tree kary:15:2 --policy rww
  oat bench-net --tree star:16 --workload uniform:0.5:500 --check
  oat bench --tree kary:31:2 --workload uniform:0.5:600 --depth 8 --json
  oat mlap --workload adv:4:8 --policy all --json
  oat mlap --workload bursty:6:4:5 --tree kary:15:2 --seed 7
  oat query 'sum group by key window tumbling(100ms)' --stream zipf --keys 4
  oat query 'count group by key' --facts 200 --transport ring --json
";

/// Minimal `--flag value` extraction.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_tree(spec: &str) -> Result<Tree, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<usize, String> {
        s.parse()
            .map_err(|_| format!("bad number `{s}` in tree spec"))
    };
    match parts.as_slice() {
        ["pair"] => Ok(Tree::pair()),
        ["path", n] => Ok(Tree::path(num(n)?)),
        ["star", n] => Ok(Tree::star(num(n)?)),
        ["kary", n, k] => Ok(Tree::kary(num(n)?, num(k)?)),
        ["random", n, seed] => Ok(oat::workloads::random_tree(num(n)?, num(seed)? as u64)),
        ["caterpillar", s, l] => Ok(oat::workloads::caterpillar(num(s)?, num(l)?)),
        _ => Err(format!("bad tree spec `{spec}`")),
    }
}

fn parse_workload(spec: &str, tree: &Tree, seed: u64) -> Result<Vec<Request<i64>>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let f = |s: &str| -> Result<f64, String> {
        s.parse()
            .map_err(|_| format!("bad float `{s}` in workload spec"))
    };
    let u = |s: &str| -> Result<usize, String> {
        s.parse()
            .map_err(|_| format!("bad number `{s}` in workload spec"))
    };
    match parts.as_slice() {
        ["uniform", wf, len] => Ok(oat::workloads::uniform(tree, u(len)?, f(wf)?, seed)),
        ["hotspot", wf, len, r, w] => Ok(oat::workloads::hotspot(
            tree,
            u(len)?,
            f(wf)?,
            u(r)?,
            u(w)?,
            seed,
        )),
        ["zipf", wf, len, alpha] => {
            Ok(oat::workloads::zipf(tree, u(len)?, f(wf)?, f(alpha)?, seed))
        }
        ["singlewriter", rounds, wpr] => Ok(oat::workloads::single_writer(
            tree,
            u(rounds)?,
            u(wpr)?,
            NodeId(0),
        )),
        _ => Err(format!("bad workload spec `{spec}`")),
    }
}

fn parse_script(spec: &str) -> Result<Vec<Request<i64>>, String> {
    spec.split(',')
        .map(|item| {
            let item = item.trim();
            if let Some(rest) = item.strip_prefix("c@") {
                let node: u32 = rest.parse().map_err(|_| format!("bad node in `{item}`"))?;
                Ok(Request::combine(NodeId(node)))
            } else if let Some(rest) = item.strip_prefix("w@") {
                let (node, value) = rest
                    .split_once('=')
                    .ok_or_else(|| format!("write item `{item}` needs =VALUE"))?;
                Ok(Request::write(
                    NodeId(node.parse().map_err(|_| format!("bad node in `{item}`"))?),
                    value
                        .parse()
                        .map_err(|_| format!("bad value in `{item}`"))?,
                ))
            } else {
                Err(format!("bad script item `{item}` (want c@N or w@N=V)"))
            }
        })
        .collect()
}

/// A named policy, dispatched dynamically at the CLI boundary.
enum PolicyChoice {
    Rww,
    Always,
    Never,
    Ab(u32, u32),
    RandomBreak(u32, u64),
}

fn parse_policy(spec: &str) -> Result<PolicyChoice, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let u = |s: &str| -> Result<u32, String> {
        s.parse()
            .map_err(|_| format!("bad number `{s}` in policy spec"))
    };
    match parts.as_slice() {
        ["rww"] => Ok(PolicyChoice::Rww),
        ["always"] => Ok(PolicyChoice::Always),
        ["never"] => Ok(PolicyChoice::Never),
        ["ab", a, b] => Ok(PolicyChoice::Ab(u(a)?, u(b)?)),
        ["randombreak", b, seed] => Ok(PolicyChoice::RandomBreak(u(b)?, u(seed)? as u64)),
        _ => Err(format!("bad policy spec `{spec}`")),
    }
}

struct RunStats {
    name: String,
    msgs: u64,
    combines: usize,
    read_lat_mean: f64,
    reads_local_pct: f64,
}

fn run_one<S: PolicySpec>(spec: &S, tree: &Tree, seq: &[Request<i64>], prewarm: bool) -> RunStats {
    let mut eng = Engine::new(tree.clone(), SumI64, spec, Schedule::Fifo, false);
    if prewarm {
        eng.prewarm_leases();
    }
    let chunk = oat::sim::sequential::run_sequential_on(&mut eng, seq, 0);
    let read_lats: Vec<u32> = seq
        .iter()
        .zip(&chunk.per_request_latency)
        .filter(|(q, _)| q.op.is_combine())
        .map(|(_, &l)| l)
        .collect();
    let reads = read_lats.len().max(1);
    RunStats {
        name: spec.name(),
        msgs: chunk.per_request_msgs.iter().sum(),
        combines: chunk.combines.len(),
        read_lat_mean: read_lats.iter().map(|&l| l as f64).sum::<f64>() / reads as f64,
        reads_local_pct: read_lats.iter().filter(|&&l| l == 0).count() as f64 * 100.0
            / reads as f64,
    }
}

fn run_policy(choice: &PolicyChoice, tree: &Tree, seq: &[Request<i64>]) -> RunStats {
    match choice {
        PolicyChoice::Rww => run_one(&RwwSpec, tree, seq, false),
        PolicyChoice::Always => run_one(&AlwaysLeaseSpec, tree, seq, true),
        PolicyChoice::Never => run_one(&NeverLeaseSpec, tree, seq, false),
        PolicyChoice::Ab(a, b) => run_one(&AbSpec::new(*a, *b), tree, seq, false),
        PolicyChoice::RandomBreak(b, s) => run_one(&RandomBreakSpec::new(*b, *s), tree, seq, false),
    }
}

fn print_stats_line(s: &RunStats, seq_len: usize, opt: u64, lb: u64) {
    println!(
        "  {:<18} {:>9} msgs  {:>7.3} msgs/req  ratio vs OPT {:>6}  vs NOPT-lb {:>6}  read lat {:>5.2} ({:>3.0}% local)",
        s.name,
        s.msgs,
        s.msgs as f64 / seq_len as f64,
        if opt > 0 { format!("{:.3}", s.msgs as f64 / opt as f64) } else { "-".into() },
        if lb > 0 { format!("{:.3}", s.msgs as f64 / lb as f64) } else { "-".into() },
        s.read_lat_mean,
        s.reads_local_pct,
    );
}

fn cmd_run(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        let tree = parse_tree(flag(args, "--tree").ok_or("missing --tree")?)?;
        let policy = parse_policy(flag(args, "--policy").unwrap_or("rww"))?;
        let seed: u64 = flag(args, "--seed")
            .unwrap_or("42")
            .parse()
            .map_err(|_| "bad --seed")?;
        let seq = parse_workload(
            flag(args, "--workload").ok_or("missing --workload")?,
            &tree,
            seed,
        )?;
        let opt = opt_total_cost(&tree, &seq);
        let lb = nopt_total_lower_bound(&tree, &seq);
        let stats = run_policy(&policy, &tree, &seq);
        println!(
            "tree: {} nodes, {} edges; workload: {} requests ({} combines)",
            tree.len(),
            tree.num_edges(),
            seq.len(),
            stats.combines
        );
        print_stats_line(&stats, seq.len(), opt, lb);
        println!(
            "  {:<18} {opt:>9} msgs (offline lease-based optimum)",
            "OPT"
        );
        Ok(())
    })();
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn cmd_compare(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        let tree = parse_tree(flag(args, "--tree").ok_or("missing --tree")?)?;
        let seed: u64 = flag(args, "--seed")
            .unwrap_or("42")
            .parse()
            .map_err(|_| "bad --seed")?;
        let seq = parse_workload(
            flag(args, "--workload").ok_or("missing --workload")?,
            &tree,
            seed,
        )?;
        let opt = opt_total_cost(&tree, &seq);
        let lb = nopt_total_lower_bound(&tree, &seq);
        println!(
            "tree: {} nodes; workload: {} requests; OPT = {opt} msgs",
            tree.len(),
            seq.len()
        );
        for choice in [
            PolicyChoice::Rww,
            PolicyChoice::Ab(1, 3),
            PolicyChoice::Ab(2, 2),
            PolicyChoice::RandomBreak(2, seed),
            PolicyChoice::Always,
            PolicyChoice::Never,
        ] {
            let stats = run_policy(&choice, &tree, &seq);
            print_stats_line(&stats, seq.len(), opt, lb);
        }
        Ok(())
    })();
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn cmd_trace(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        // Two modes: `--workload` records a live oat-obs trace of the sim
        // and TCP runtimes; `--script` is the legacy step-by-step message
        // renderer for tiny hand-written sequences.
        if flag(args, "--workload").is_some() {
            return trace_workload(args);
        }
        let tree = parse_tree(flag(args, "--tree").ok_or("missing --tree")?)?;
        let script = parse_script(flag(args, "--script").ok_or("missing --script or --workload")?)?;
        // Traces are policy-generic but the renderer needs a concrete
        // engine; only RWW is supported here (the interesting one).
        match parse_policy(flag(args, "--policy").unwrap_or("rww"))? {
            PolicyChoice::Rww => {}
            _ => return Err("trace currently supports --policy rww only".into()),
        }
        let mut eng: Engine<RwwSpec, SumI64> =
            Engine::new(tree.clone(), SumI64, &RwwSpec, Schedule::Fifo, false);
        let trace = record_sequential(&mut eng, &script);
        print!("{}", trace.render());
        println!("\nfinal lease graph:");
        print!("{}", render_leases(&eng));
        println!("\ntotal messages: {}", eng.stats().total());
        Ok(())
    })();
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

/// Runs `$body` with `$spec` bound to the concrete policy value named by
/// `$choice` — the dynamic→static dispatch point for the net commands,
/// which need a statically typed `PolicySpec` for `Cluster::spawn`.
macro_rules! with_policy {
    ($choice:expr, $spec:ident => $body:expr) => {
        match $choice {
            PolicyChoice::Rww => {
                let $spec = RwwSpec;
                $body
            }
            PolicyChoice::Always => {
                let $spec = AlwaysLeaseSpec;
                $body
            }
            PolicyChoice::Never => {
                let $spec = NeverLeaseSpec;
                $body
            }
            PolicyChoice::Ab(a, b) => {
                let $spec = AbSpec::new(*a, *b);
                $body
            }
            PolicyChoice::RandomBreak(b, s) => {
                let $spec = RandomBreakSpec::new(*b, *s);
                $body
            }
        }
    };
}

/// `oat trace --workload`: record a live trace of the sim and net
/// runtimes executing one workload, then export it.
fn trace_workload(args: &[String]) -> Result<(), String> {
    let tree = parse_tree(flag(args, "--tree").ok_or("missing --tree")?)?;
    let policy = parse_policy(flag(args, "--policy").unwrap_or("rww"))?;
    let seed: u64 = flag(args, "--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "bad --seed")?;
    let seq = parse_workload(
        flag(args, "--workload").ok_or("missing --workload")?,
        &tree,
        seed,
    )?;
    let depth: usize = flag(args, "--pipeline")
        .unwrap_or("4")
        .parse()
        .map_err(|_| "bad --pipeline")?;
    let plan = FaultPlan::parse(flag(args, "--faults").unwrap_or("none"))?;
    let out = flag(args, "--out").unwrap_or("oat-trace.jsonl").to_string();
    let chrome = flag(args, "--chrome").map(str::to_string);
    with_policy!(&policy, spec =>
        trace_record(&tree, &spec, &seq, depth, plan, &out, chrome.as_deref()))
}

fn trace_record<S: PolicySpec>(
    tree: &Tree,
    spec: &S,
    seq: &[Request<i64>],
    depth: usize,
    plan: FaultPlan,
    out: &str,
    chrome: Option<&str>,
) -> Result<(), String>
where
    S::Node: 'static,
{
    oat_obs::install(oat_obs::DEFAULT_RING_CAPACITY);
    // Phase 1: the deterministic simulator (sim + lease categories).
    let sim = oat::sim::run_sequential(tree, SumI64, spec, Schedule::Fifo, seq, false);
    // Phase 2: the TCP cluster under pipelined load (request / frame /
    // reactor categories, plus fault events when --faults is given).
    let cluster = Cluster::spawn_with_faults(tree, SumI64, spec, false, plan)
        .map_err(|e| format!("cluster spawn: {e}"))?;
    let pipe = cluster
        .replay_pipelined(seq, depth.max(1))
        .map_err(|e| format!("pipelined replay: {e}"))?;
    cluster.quiesce();
    cluster.shutdown();
    oat_obs::disable();
    let trace = oat_obs::drain();
    let breakdown = oat_obs::phase_breakdown(&trace.events);
    std::fs::write(out, oat_obs::to_jsonl(&trace)).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "trace: {} events from {} rings ({} dropped); sim {} msgs, \
         pipelined {} reqs in {:.3}s",
        trace.events.len(),
        trace.rings,
        trace.dropped,
        sim.engine.stats().total(),
        seq.len(),
        pipe.elapsed.as_secs_f64(),
    );
    for (cat, n) in trace.category_counts() {
        println!("  {cat:<8} {n:>8}");
    }
    println!(
        "phases (of {} matched requests): poll {:.1}us  queue {:.1}us  \
         dispatch {:.1}us  wire {:.1}us",
        breakdown.matched,
        breakdown.poll.quantile_us(0.5),
        breakdown.queue.quantile_us(0.5),
        breakdown.dispatch.quantile_us(0.5),
        breakdown.wire.quantile_us(0.5),
    );
    let wires = oat_obs::wire_latency(&trace.events);
    println!(
        "edge wire latency ({} of {} frames matched tx→rx): p50 {:.1}us  p99 {:.1}us",
        wires.matched,
        wires.tx,
        wires.hist.quantile_us(0.5),
        wires.hist.quantile_us(0.99),
    );
    println!("wrote {out}");
    if let Some(cp) = chrome {
        std::fs::write(cp, oat_obs::to_chrome(&trace)).map_err(|e| format!("write {cp}: {e}"))?;
        println!("wrote {cp} (load in chrome://tracing or Perfetto)");
    }
    Ok(())
}

fn cmd_top(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        let tree = parse_tree(flag(args, "--tree").unwrap_or("kary:15:2"))?;
        let policy = parse_policy(flag(args, "--policy").unwrap_or("rww"))?;
        let seed: u64 = flag(args, "--seed")
            .unwrap_or("42")
            .parse()
            .map_err(|_| "bad --seed")?;
        let seq = parse_workload(
            flag(args, "--workload").unwrap_or("uniform:0.5:400"),
            &tree,
            seed,
        )?;
        let depth: usize = flag(args, "--pipeline")
            .unwrap_or("8")
            .parse()
            .map_err(|_| "bad --pipeline")?;
        let interval: u64 = flag(args, "--interval-ms")
            .unwrap_or("500")
            .parse()
            .map_err(|_| "bad --interval-ms")?;
        let ticks: u32 = flag(args, "--ticks")
            .unwrap_or("8")
            .parse()
            .map_err(|_| "bad --ticks")?;
        with_policy!(&policy, spec => run_top(&tree, &spec, &seq, depth, interval, ticks))
    })();
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

/// Persistent per-node metrics connections for `oat top`: one
/// [`ClusterClient`](oat::net::ClusterClient) per node, opened lazily on
/// first use and reused across ticks instead of re-dialing TCP every
/// refresh. A failed poll drops that node's connection (it is re-dialed
/// on the next tick) and is reported to the frame as an error row rather
/// than aborting the view — a node may be mid-crash-restart.
struct MetricsPoller {
    clients: Vec<Option<oat::net::ClusterClient<i64>>>,
}

impl MetricsPoller {
    fn new(nodes: usize) -> Self {
        MetricsPoller {
            clients: (0..nodes).map(|_| None).collect(),
        }
    }

    fn poll(
        &mut self,
        cluster: &Cluster<SumI64>,
    ) -> Vec<(u32, Result<oat::net::NodeMetrics, String>)> {
        self.clients
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                let node = i as u32;
                if slot.is_none() {
                    match cluster.client(NodeId(node)) {
                        Ok(c) => *slot = Some(c),
                        Err(e) => return (node, Err(e.to_string())),
                    }
                }
                match slot.as_mut().expect("connected above").metrics() {
                    Ok(m) => (node, Ok(m)),
                    Err(e) => {
                        *slot = None;
                        (node, Err(e.to_string()))
                    }
                }
            })
            .collect()
    }
}

/// Renders one `oat top` frame into a string (no cursor-movement codes;
/// failed metrics rows are dimmed with a plain SGR attribute).
fn top_frame(
    cluster: &Cluster<SumI64>,
    trace: &oat_obs::Trace,
    rows: &[(u32, Result<oat::net::NodeMetrics, String>)],
    tick: u32,
    ticks: u32,
    elapsed: std::time::Duration,
) -> String {
    use std::fmt::Write as _;
    let b = oat_obs::phase_breakdown(&trace.events);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "oat top — {} nodes, policy {}, tick {tick}/{ticks}, {:.1}s",
        cluster.tree().len(),
        cluster.policy_name(),
        elapsed.as_secs_f64(),
    );
    let rate = if elapsed.as_secs_f64() > 0.0 {
        b.requests as f64 / elapsed.as_secs_f64()
    } else {
        0.0
    };
    let _ = writeln!(
        s,
        "  requests {:>7} ({:>7.0} req/s)  lat p50 {:>7.1}us  p99 {:>7.1}us  p999 {:>7.1}us",
        b.requests,
        rate,
        b.latency.quantile_us(0.50),
        b.latency.quantile_us(0.99),
        b.latency.quantile_us(0.999),
    );
    let _ = writeln!(
        s,
        "  phase p50 (of {} matched): poll {:.1}us  queue {:.1}us  dispatch {:.1}us  wire {:.1}us",
        b.matched,
        b.poll.quantile_us(0.5),
        b.queue.quantile_us(0.5),
        b.dispatch.quantile_us(0.5),
        b.wire.quantile_us(0.5),
    );
    let mut cats = String::new();
    for (cat, n) in trace.category_counts() {
        let _ = write!(cats, "{cat} {n}  ");
    }
    let _ = writeln!(
        s,
        "  events: {}(dropped {})",
        cats.trim_end(),
        trace.dropped
    );
    let _ = writeln!(
        s,
        "  {:>4}  {:>8} {:>6} {:>6}  {:>5} {:>7}  {:>6} {:>5} {:>8}",
        "node", "served", "queue", "peak", "taken", "granted", "reconn", "rto", "restarts"
    );
    // The busiest nodes by combines served; nodes whose poll failed (a
    // node may be mid-crash-restart under --faults) become dimmed rows.
    let mut ok: Vec<&oat::net::NodeMetrics> =
        rows.iter().filter_map(|(_, r)| r.as_ref().ok()).collect();
    ok.sort_by_key(|m| std::cmp::Reverse(m.combines_served));
    for m in ok.iter().take(8) {
        let _ = writeln!(
            s,
            "  {:>4}  {:>8} {:>6} {:>6}  {:>5} {:>7}  {:>6} {:>5} {:>8}",
            m.node,
            m.combines_served,
            m.queue_depth,
            m.queue_peak,
            m.leases_taken,
            m.leases_granted,
            m.reconnects,
            m.timeouts,
            m.restarts,
        );
    }
    for (node, err) in rows
        .iter()
        .filter_map(|(n, r)| r.as_ref().err().map(|e| (n, e)))
        .take(4)
    {
        let _ = writeln!(s, "  \x1b[2m{node:>4}  poll failed: {err}\x1b[0m");
    }
    s
}

fn run_top<S: PolicySpec>(
    tree: &Tree,
    spec: &S,
    seq: &[Request<i64>],
    depth: usize,
    interval_ms: u64,
    ticks: u32,
) -> Result<(), String>
where
    S::Node: 'static,
{
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};
    let cluster =
        Cluster::spawn(tree, SumI64, spec, false).map_err(|e| format!("cluster spawn: {e}"))?;
    oat_obs::install(oat_obs::DEFAULT_RING_CAPACITY);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let mut err: Option<String> = None;
    std::thread::scope(|scope| {
        // Background load: the workload replayed pipelined, over and over,
        // until the foreground view has shown its last tick.
        let load = scope.spawn(|| {
            let mut loops = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if let Err(e) = cluster.replay_pipelined(seq, depth.max(1)) {
                    return Err(format!("pipelined replay: {e}"));
                }
                loops += 1;
            }
            Ok(loops)
        });
        let mut prev_lines = 0usize;
        let mut poller = MetricsPoller::new(tree.len());
        for tick in 1..=ticks {
            std::thread::sleep(Duration::from_millis(interval_ms));
            let rows = poller.poll(&cluster);
            let frame = top_frame(
                &cluster,
                &oat_obs::drain(),
                &rows,
                tick,
                ticks,
                start.elapsed(),
            );
            // Redraw in place: move the cursor back up over the previous
            // frame and clear each line as it is rewritten.
            if prev_lines > 0 {
                print!("\x1b[{prev_lines}A");
            }
            for line in frame.lines() {
                println!("\x1b[2K{line}");
            }
            prev_lines = frame.lines().count();
        }
        stop.store(true, Ordering::Relaxed);
        match load.join().expect("load thread panicked") {
            Ok(loops) => println!("load: {loops} full workload replays"),
            Err(e) => err = Some(e),
        }
    });
    oat_obs::disable();
    cluster.quiesce();
    cluster.shutdown();
    err.map_or(Ok(()), Err)
}

fn cmd_serve(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        let tree = parse_tree(flag(args, "--tree").unwrap_or("kary:15:2"))?;
        let policy = parse_policy(flag(args, "--policy").unwrap_or("rww"))?;
        let transport = match flag(args, "--transport") {
            None => oat::net::TransportKind::default(),
            Some(s) => oat::net::TransportKind::parse(s)
                .ok_or_else(|| format!("bad --transport `{s}` (want tcp | uds | ring)"))?,
        };
        with_policy!(&policy, spec => serve_cluster(&tree, &spec, transport))
    })();
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn serve_cluster<S: PolicySpec>(
    tree: &Tree,
    spec: &S,
    transport: oat::net::TransportKind,
) -> Result<(), String>
where
    S::Node: 'static,
{
    let cfg = NetConfig {
        transport,
        ..NetConfig::default()
    };
    let cluster = Cluster::spawn_with(
        tree,
        SumI64,
        spec,
        false,
        oat::core::fault::FaultPlan::default(),
        cfg,
    )
    .map_err(|e| format!("cluster spawn: {e}"))?;
    println!(
        "oat-net cluster up: {} nodes, policy {}, one {} listener per node",
        tree.len(),
        cluster.policy_name(),
        transport.name()
    );
    for (i, addr) in cluster.addrs().iter().enumerate() {
        println!("  node {i:>3}  {addr}");
    }
    println!("commands: c@N | w@N=V | metrics [N] | stats | quit");
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let cmd = line.trim();
        if cmd.is_empty() {
            continue;
        }
        match serve_command(&cluster, cmd) {
            Ok(Some(out)) => println!("{out}"),
            Ok(None) => break,
            Err(e) => println!("error: {e}"),
        }
    }
    let report = cluster.shutdown();
    println!("cluster down; total messages: {}", report.stats.total());
    Ok(())
}

/// Executes one interactive `serve` command; `Ok(None)` means quit.
fn serve_command(cluster: &Cluster<SumI64>, cmd: &str) -> Result<Option<String>, String> {
    let check_node = |n: NodeId| -> Result<NodeId, String> {
        if (n.0 as usize) < cluster.tree().len() {
            Ok(n)
        } else {
            Err(format!(
                "node {} out of range 0..{}",
                n.0,
                cluster.tree().len()
            ))
        }
    };
    if cmd == "quit" || cmd == "exit" {
        return Ok(None);
    }
    if cmd == "stats" {
        cluster.quiesce();
        return cluster.stats_json().map(Some).map_err(|e| e.to_string());
    }
    if let Some(rest) = cmd.strip_prefix("metrics") {
        cluster.quiesce();
        let rest = rest.trim();
        if rest.is_empty() {
            return cluster.metrics_json().map(Some).map_err(|e| e.to_string());
        }
        let n: u32 = rest.parse().map_err(|_| format!("bad node `{rest}`"))?;
        return cluster
            .node_metrics(check_node(NodeId(n))?)
            .map(|m| Some(m.to_json()))
            .map_err(|e| e.to_string());
    }
    let mut out = String::new();
    for req in parse_script(cmd)? {
        let node = check_node(req.node)?;
        let mut client = cluster
            .client(node)
            .map_err(|e| format!("connect to node {}: {e}", node.0))?;
        if !out.is_empty() {
            out.push('\n');
        }
        match req.op {
            ReqOp::Combine => {
                let v = client.combine().map_err(|e| e.to_string())?;
                out.push_str(&format!("combine @ {} = {v}", node.0));
            }
            ReqOp::Write(v) => {
                client.write(v).map_err(|e| e.to_string())?;
                out.push_str(&format!("write   @ {} <- {v}", node.0));
            }
        }
    }
    cluster.quiesce();
    out.push_str(&format!(
        "\n  [{} messages total]",
        cluster.total_messages()
    ));
    Ok(Some(out))
}

fn cmd_bench_net(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        let tree = parse_tree(flag(args, "--tree").ok_or("missing --tree")?)?;
        let policy = parse_policy(flag(args, "--policy").unwrap_or("rww"))?;
        let seed: u64 = flag(args, "--seed")
            .unwrap_or("42")
            .parse()
            .map_err(|_| "bad --seed")?;
        let seq = parse_workload(
            flag(args, "--workload").ok_or("missing --workload")?,
            &tree,
            seed,
        )?;
        let json = args.iter().any(|a| a == "--json");
        let check = args.iter().any(|a| a == "--check");
        let pipeline: usize = match flag(args, "--pipeline") {
            Some(s) => s.parse().map_err(|_| "bad --pipeline")?,
            None => 0,
        };
        with_policy!(&policy, spec => bench_net(&tree, &spec, &seq, json, check, pipeline))
    })();
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn bench_net<S: PolicySpec>(
    tree: &Tree,
    spec: &S,
    seq: &[Request<i64>],
    json: bool,
    check: bool,
    pipeline: usize,
) -> Result<(), String>
where
    S::Node: 'static,
{
    let cluster =
        Cluster::spawn(tree, SumI64, spec, false).map_err(|e| format!("cluster spawn: {e}"))?;
    let start = std::time::Instant::now();
    let net = cluster
        .replay_sequential(seq)
        .map_err(|e| format!("replay: {e}"))?;
    let elapsed = start.elapsed();
    let stats = cluster.stats().map_err(|e| e.to_string())?;
    if json {
        println!("{}", cluster.stats_json().map_err(|e| e.to_string())?);
    } else {
        let [probes, responses, updates, releases] = stats.kind_totals();
        println!(
            "tree: {} nodes; policy {}; {} requests ({} combines) over TCP in {:.3}s",
            tree.len(),
            cluster.policy_name(),
            seq.len(),
            net.combines.len(),
            elapsed.as_secs_f64(),
        );
        println!(
            "  {:>9} msgs  {:>7.3} msgs/req  (probe {probes}, response {responses}, \
             update {updates}, release {releases})",
            net.total_msgs(),
            net.total_msgs() as f64 / seq.len().max(1) as f64,
        );
    }
    if check {
        let sim = oat::sim::run_sequential(tree, SumI64, spec, Schedule::Fifo, seq, false);
        if net.combines == sim.combines
            && net.per_request_msgs == sim.per_request_msgs
            && stats.per_edge_counts() == sim.engine.stats().per_edge_counts()
        {
            println!(
                "  parity: OK — combine values and per-edge/per-kind counts match the simulator"
            );
        } else {
            return Err("parity FAILED: TCP run diverged from the simulator".into());
        }
    }
    cluster.shutdown();
    if pipeline > 0 {
        // The concurrent multi-client driver: same workload on a fresh
        // cluster, one client per active node, `pipeline` requests in
        // flight each — the throughput mode the sequential numbers above
        // are the baseline for.
        let cluster =
            Cluster::spawn(tree, SumI64, spec, false).map_err(|e| format!("cluster spawn: {e}"))?;
        let pipe = cluster
            .replay_pipelined(seq, pipeline)
            .map_err(|e| format!("pipelined replay: {e}"))?;
        cluster.quiesce();
        let msgs = cluster.total_messages();
        let secs = pipe.elapsed.as_secs_f64();
        println!(
            "  pipelined (depth {pipeline}): {} requests in {:.3}s  {:>9.0} req/s  \
             {} msgs ({:.3} msgs/req)  [{:.2}x vs sequential]",
            seq.len(),
            secs,
            if secs > 0.0 {
                seq.len() as f64 / secs
            } else {
                0.0
            },
            msgs,
            msgs as f64 / seq.len().max(1) as f64,
            if secs > 0.0 {
                elapsed.as_secs_f64() / secs
            } else {
                0.0
            },
        );
        cluster.shutdown();
    }
    Ok(())
}

fn cmd_chaos(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        let tree = parse_tree(flag(args, "--tree").ok_or("missing --tree")?)?;
        let policy = parse_policy(flag(args, "--policy").unwrap_or("rww"))?;
        let seed: u64 = flag(args, "--seed")
            .unwrap_or("42")
            .parse()
            .map_err(|_| "bad --seed")?;
        let seq = parse_workload(
            flag(args, "--workload").ok_or("missing --workload")?,
            &tree,
            seed,
        )?;
        let mut plan = FaultPlan::parse(
            flag(args, "--faults").unwrap_or("seed:7,drop:0.05,dup:0.05,delay:0.05"),
        )?;
        if let Some(spec) = flag(args, "--kill9") {
            for part in spec.split(',') {
                let (n, d) = part
                    .split_once('@')
                    .ok_or_else(|| format!("bad --kill9 item `{part}` (want NODE@DELIVERED)"))?;
                plan.kill9s.push(CrashNode {
                    node: NodeId(n.parse().map_err(|_| format!("bad --kill9 node `{n}`"))?),
                    after_delivered: d
                        .parse()
                        .map_err(|_| format!("bad --kill9 delivered `{d}`"))?,
                });
            }
        }
        let fsync_every: u64 = flag(args, "--fsync-every")
            .unwrap_or("8")
            .parse()
            .map_err(|_| "bad --fsync-every")?;
        let snapshot_every: u64 = flag(args, "--snapshot-every")
            .unwrap_or("4096")
            .parse()
            .map_err(|_| "bad --snapshot-every")?;
        // A process kill needs somewhere durable to recover from, so
        // `--kill9` without an explicit backend gets a fresh WAL in a
        // temp dir. A fresh dir also arms the ci cross-check: cold
        // start finds nothing, so every WAL replay is a kill9 recovery.
        let fresh_wal_dir = || {
            let dir = std::env::temp_dir().join(format!("oat-chaos-wal-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        };
        let (durability, fresh_wal) = match flag(args, "--durability") {
            None if plan.kill9s.is_empty() => (DurabilityMode::Memory, false),
            None | Some("wal") => {
                let mut wal = WalConfig::new(fresh_wal_dir());
                wal.fsync_every = fsync_every;
                wal.snapshot_every = snapshot_every;
                (DurabilityMode::Wal(wal), true)
            }
            Some("memory") => (DurabilityMode::Memory, false),
            Some(s) => match s.strip_prefix("wal:") {
                Some(dir) if !dir.is_empty() => {
                    let mut wal = WalConfig::new(dir);
                    wal.fsync_every = fsync_every;
                    wal.snapshot_every = snapshot_every;
                    (DurabilityMode::Wal(wal), false)
                }
                _ => return Err(format!("bad --durability `{s}` (want memory | wal[:DIR])")),
            },
        };
        let transport = match flag(args, "--transport") {
            None => oat::net::TransportKind::default(),
            Some(s) => oat::net::TransportKind::parse(s)
                .ok_or_else(|| format!("bad --transport `{s}` (want tcp | uds | ring)"))?,
        };
        let cfg = NetConfig {
            durability,
            transport,
            ..NetConfig::default()
        };
        with_policy!(&policy, spec => chaos_run(&tree, &spec, &seq, plan, cfg, fresh_wal))
    })();
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn chaos_run<S: PolicySpec>(
    tree: &Tree,
    spec: &S,
    seq: &[Request<i64>],
    plan: FaultPlan,
    cfg: NetConfig,
    fresh_wal: bool,
) -> Result<(), String>
where
    S::Node: 'static,
{
    use std::time::Duration;
    let kills_planned = plan.kills.len();
    let crashes_planned = plan.crashes.len();
    let kill9s_planned = plan.kill9s.len();
    let durable = matches!(cfg.durability, DurabilityMode::Wal(_));
    let cluster = Cluster::spawn_with(tree, SumI64, spec, false, plan, cfg)
        .map_err(|e| format!("cluster spawn: {e}"))?;
    println!(
        "chaos: {} nodes, policy {}, {} requests; plan: {} kills, {} crashes, \
         {} kill9s scheduled; durability {}",
        tree.len(),
        cluster.policy_name(),
        seq.len(),
        kills_planned,
        crashes_planned,
        kill9s_planned,
        if durable { "wal" } else { "memory" },
    );
    let start = std::time::Instant::now();
    let mut clients: Vec<Option<oat::net::ClusterClient<i64>>> =
        (0..tree.len()).map(|_| None).collect();
    let mut last = vec![0i64; tree.len()];
    let mut combines = 0u64;
    for (i, q) in seq.iter().enumerate() {
        let slot = &mut clients[q.node.idx()];
        let client = match slot {
            Some(c) => c,
            None => {
                let mut c = cluster
                    .client(q.node)
                    .map_err(|e| format!("connect to node {}: {e}", q.node.0))?;
                c.set_timeout(Some(Duration::from_millis(250)), 240)
                    .map_err(|e| format!("arm timeout: {e}"))?;
                slot.insert(c)
            }
        };
        match &q.op {
            ReqOp::Write(v) => {
                client
                    .write(*v)
                    .map_err(|e| format!("request {i}: write failed: {e}"))?;
                last[q.node.idx()] = *v;
            }
            ReqOp::Combine => {
                let got = client
                    .combine()
                    .map_err(|e| format!("request {i}: combine failed: {e}"))?;
                let want: i64 = last.iter().sum();
                if got != want {
                    return Err(format!(
                        "request {i}: combine at node {} returned {got}, oracle says {want} \
                         — STRICT CONSISTENCY VIOLATED",
                        q.node.0
                    ));
                }
                combines += 1;
            }
        }
        if !cluster.quiesce_for(Duration::from_secs(30)) {
            return Err(format!("request {i}: cluster failed to drain — wedged"));
        }
    }
    let elapsed = start.elapsed();
    let (drops, dups, delays, kills, crashes) = cluster.injected().snapshot();
    let (kill9s, torn_tails, fsync_fails) = cluster.injected().snapshot_process();
    let report = cluster.shutdown();
    println!(
        "  {} combines, every one equal to the sequential oracle, in {:.3}s",
        combines,
        elapsed.as_secs_f64()
    );
    println!(
        "  injected:  drops {drops}, dups {dups}, delays {delays}, \
         conns killed {kills}, crashes {crashes}, kill9s {kill9s}, \
         torn tails {torn_tails}, fsync fails {fsync_fails}"
    );
    println!(
        "  recovered: reconnects {}, retransmits {}, rto expiries {}, \
         restarts {} (kill9 {})",
        report.faults.reconnects,
        report.faults.retransmits,
        report.faults.timeouts,
        report.faults.restarts,
        report.faults.kill9s,
    );
    if durable {
        println!(
            "  wal:       {} records ({} B), {} fsyncs ({} failed), \
             {} snapshots, {} replays, {} B torn",
            report.wal.records,
            report.wal.appended_bytes,
            report.wal.fsyncs,
            report.wal.fsync_failures,
            report.wal.snapshots,
            report.wal.replays,
            report.wal.torn_bytes,
        );
    }
    if !report.dead_nodes.is_empty() {
        return Err(format!(
            "dead nodes at shutdown: {:?}",
            report.dead_nodes.iter().map(|n| n.0).collect::<Vec<_>>()
        ));
    }
    if kills != kills_planned as u64
        || crashes != crashes_planned as u64
        || kill9s != kill9s_planned as u64
    {
        return Err(format!(
            "schedule incomplete: {kills}/{kills_planned} kills, \
             {crashes}/{crashes_planned} crashes, \
             {kill9s}/{kill9s_planned} kill9s fired — the workload was \
             too small to reach the scheduled trigger points"
        ));
    }
    // Cross-checks between the ledger and the recovery counters: every
    // injected process fault must show up as exactly one restart-grade
    // recovery, and vice versa.
    if report.faults.kill9s != kill9s {
        return Err(format!(
            "ledger/counter mismatch: {kill9s} kill9s injected but nodes \
             recorded {}",
            report.faults.kill9s
        ));
    }
    if report.faults.restarts != crashes + kill9s {
        return Err(format!(
            "restart accounting broken: {} restarts != {crashes} crashes \
             + {kill9s} kill9s",
            report.faults.restarts
        ));
    }
    if fresh_wal && report.wal.replays != kill9s {
        return Err(format!(
            "wal replay accounting broken: fresh log dir, so every replay \
             is a kill9 recovery, yet {} replays != {kill9s} kill9s",
            report.wal.replays
        ));
    }
    println!("  chaos: OK");
    Ok(())
}

/// Parses an `oat mlap` workload spec into an instance. `adv:DEPTH:LEGS`
/// builds its own spider topology; `bursty:BURSTS:SIZE:WINDOW` and
/// `delay:LEN:GAP` generate requests on `tree`.
fn parse_mlap_workload(
    spec: &str,
    tree: &Tree,
    seed: u64,
) -> Result<oat::mlap::MlapInstance, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<usize, String> {
        s.parse()
            .map_err(|_| format!("bad number `{s}` in mlap workload spec"))
    };
    match parts.as_slice() {
        ["adv", d, l] => Ok(oat::workloads::mlap::adversarial_deadline(num(d)?, num(l)?)),
        ["bursty", b, s, w] => Ok(oat::workloads::mlap::bursty_deadline(
            tree,
            num(b)?,
            num(s)?,
            num(w)? as u64,
            seed,
        )),
        ["delay", len, gap] => Ok(oat::workloads::mlap::uniform_delay(
            tree,
            num(len)?,
            num(gap)? as u64,
            seed,
        )),
        _ => Err(format!(
            "bad mlap workload spec `{spec}` \
             (want adv:DEPTH:LEGS | bursty:BURSTS:SIZE:WINDOW | delay:LEN:GAP)"
        )),
    }
}

fn cmd_mlap(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        let tree = parse_tree(flag(args, "--tree").unwrap_or("kary:15:2"))?;
        let seed: u64 = flag(args, "--seed")
            .unwrap_or("42")
            .parse()
            .map_err(|_| "bad --seed")?;
        let wspec = flag(args, "--workload").unwrap_or("adv:4:8");
        let inst = parse_mlap_workload(wspec, &tree, seed)?;
        let pspec = flag(args, "--policy").unwrap_or("all");
        let mut policies: Vec<Box<dyn oat::mlap::FlushPolicy>> = if pspec == "all" {
            oat::mlap::all_policies()
        } else {
            vec![oat::mlap::parse_flush_policy(pspec)?]
        };
        let opt = oat::offline::mlap_opt(&inst);
        let runs: Vec<oat::mlap::MlapRun> = policies
            .iter_mut()
            .map(|p| oat::mlap::run_mlap(&inst, p.as_mut(), Schedule::Fifo))
            .collect();
        let depth = inst.depth();
        let ratio_of =
            |total: u64| -> Option<f64> { opt.filter(|&o| o > 0).map(|o| total as f64 / o as f64) };
        if args.iter().any(|a| a == "--json") {
            use std::fmt::Write as _;
            let mut pols = String::from("[");
            for (i, r) in runs.iter().enumerate() {
                if i > 0 {
                    pols.push_str(", ");
                }
                let ratio =
                    ratio_of(r.total_cost()).map_or("null".to_string(), |x| format!("{x:.3}"));
                let _ = write!(
                    pols,
                    "{{\"name\": \"{}\", \"service_cost\": {}, \"delay_cost\": {}, \
                     \"deadline_misses\": {}, \"flushes\": {}, \"messages\": {}, \
                     \"total_cost\": {}, \"ratio_vs_opt\": {}}}",
                    r.policy,
                    r.service_cost,
                    r.delay_cost,
                    r.deadline_misses,
                    r.flushes.len(),
                    r.messages,
                    r.total_cost(),
                    ratio,
                );
            }
            pols.push(']');
            println!(
                "{{\"schema\": \"oat-mlap-v1\", \"model\": \"{}\", \"workload\": \"{}\", \
                 \"seed\": {}, \"nodes\": {}, \"depth\": {}, \"requests\": {}, \
                 \"opt\": {}, \"policies\": {}}}",
                inst.model.name(),
                wspec,
                seed,
                inst.tree.len(),
                depth,
                inst.requests.len(),
                opt.map_or("null".to_string(), |o| o.to_string()),
                pols,
            );
        } else {
            println!(
                "mlap: {} model, {} nodes, depth {}, {} requests, OPT {}",
                inst.model.name(),
                inst.tree.len(),
                depth,
                inst.requests.len(),
                opt.map_or_else(
                    || "n/a (over the oracle's candidate-time cap)".to_string(),
                    |o| o.to_string()
                ),
            );
            println!(
                "  {:<16} {:>8} {:>7} {:>7} {:>8} {:>9} {:>8} {:>7}",
                "policy", "service", "delay", "misses", "flushes", "messages", "total", "ratio"
            );
            for r in &runs {
                println!(
                    "  {:<16} {:>8} {:>7} {:>7} {:>8} {:>9} {:>8} {:>7}",
                    r.policy,
                    r.service_cost,
                    r.delay_cost,
                    r.deadline_misses,
                    r.flushes.len(),
                    r.messages,
                    r.total_cost(),
                    ratio_of(r.total_cost()).map_or("n/a".to_string(), |x| format!("{x:.2}")),
                );
            }
            if inst.model == oat::mlap::CostModel::Deadline {
                println!(
                    "  certified (unit weights): odepth service ≤ (depth+1)·OPT = {}·OPT",
                    depth as u64 + 1
                );
            }
        }
        Ok(())
    })();
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

/// Spawns a cluster under the right operator for the query op and runs
/// the continuous-query engine against it.
fn run_query_on<S: PolicySpec>(
    spec: &S,
    tree: &Tree,
    qspec: &oat::query::QuerySpec,
    facts: &[oat::workloads::facts::Fact],
    cfg: NetConfig,
) -> Result<oat::query::QueryRun, String>
where
    S::Node: 'static,
{
    fn go<A: AggOp<Value = i64>, S: PolicySpec>(
        op: A,
        spec: &S,
        tree: &Tree,
        qspec: &oat::query::QuerySpec,
        facts: &[oat::workloads::facts::Fact],
        cfg: NetConfig,
    ) -> Result<oat::query::QueryRun, String>
    where
        S::Node: 'static,
    {
        let cluster = Cluster::spawn_with(tree, op, spec, false, FaultPlan::default(), cfg)
            .map_err(|e| format!("cluster spawn: {e}"))?;
        oat::query::run(&cluster, qspec, facts).map_err(|e| format!("query run: {e}"))
    }
    use oat::query::OpKind;
    match qspec.op {
        OpKind::Sum | OpKind::Count => go(SumI64, spec, tree, qspec, facts, cfg),
        OpKind::Min => go(MinI64, spec, tree, qspec, facts, cfg),
        OpKind::Max => go(MaxI64, spec, tree, qspec, facts, cfg),
    }
}

fn cmd_query(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        // The spec is the leading run of non-flag arguments, so both
        // `oat query 'sum group by key'` and `oat query sum group by
        // key` parse.
        let split = args
            .iter()
            .position(|a| a.starts_with("--"))
            .unwrap_or(args.len());
        let spec_str = args[..split].join(" ");
        if spec_str.is_empty() {
            return Err(
                "missing query spec, e.g. `sum group by key window tumbling(100ms)`".into(),
            );
        }
        let qspec: oat::query::QuerySpec = spec_str.parse()?;
        let rest = &args[split..];
        let tree_spec = flag(rest, "--tree").unwrap_or("kary:7:2");
        let tree = parse_tree(tree_spec)?;
        let policy_spec = flag(rest, "--policy").unwrap_or("rww");
        let policy = parse_policy(policy_spec)?;
        let facts_n: usize = flag(rest, "--facts")
            .unwrap_or("300")
            .parse()
            .map_err(|_| "bad --facts")?;
        let keys: u32 = flag(rest, "--keys")
            .unwrap_or("4")
            .parse()
            .map_err(|_| "bad --keys")?;
        let gap_ms: u64 = flag(rest, "--gap-ms")
            .unwrap_or("4")
            .parse()
            .map_err(|_| "bad --gap-ms")?;
        let seed: u64 = flag(rest, "--seed")
            .unwrap_or("42")
            .parse()
            .map_err(|_| "bad --seed")?;
        let stream = flag(rest, "--stream").unwrap_or("zipf");
        let facts = oat::workloads::facts::facts_by_name(stream, facts_n, keys, gap_ms, seed)
            .ok_or_else(|| format!("bad --stream `{stream}` (want uniform | zipf | phases)"))?;
        let transport = match flag(rest, "--transport") {
            None => oat::net::TransportKind::Tcp,
            Some(s) => oat::net::TransportKind::parse(s)
                .ok_or_else(|| format!("bad --transport `{s}` (want tcp | uds | ring)"))?,
        };
        let cfg = NetConfig {
            transport,
            ..NetConfig::default()
        };
        let run = with_policy!(&policy, spec =>
            run_query_on(&spec, &tree, &qspec, &facts, cfg))?;
        let meta = oat::query::json::ReportMeta {
            stream,
            seed,
            keys,
            transport: transport.name(),
            tree: tree_spec,
            policy: policy_spec,
        };
        if rest.iter().any(|a| a == "--json") {
            println!("{}", oat::query::json::report_json(&run, &facts, &meta));
        } else {
            println!(
                "query: {qspec}\n  stream {stream} facts={} keys={keys} seed={seed} \
                 gap={gap_ms}ms transport={} tree={tree_spec} policy={policy_spec}",
                facts.len(),
                transport.name(),
            );
            const SHOW: usize = 120;
            for p in run.partials.iter().take(SHOW) {
                println!(
                    "  {} key {:>3} win {:>3} seq {:>4}  value {:>12}  coverage {:>6.1}%  \
                     stale {:>3}  at {:>6}ms  +{:>8.1}ms",
                    if p.is_final { "FINAL  " } else { "partial" },
                    p.key,
                    p.window,
                    p.refine_seq,
                    p.value,
                    p.coverage * 100.0,
                    p.staleness,
                    p.at_ms,
                    p.wall_ms,
                );
            }
            if run.partials.len() > SHOW {
                println!("  ... and {} more partials", run.partials.len() - SHOW);
            }
            let oracle = oat::query::oracle_finals(&qspec, &facts);
            println!("finals vs sequential oracle:");
            let mut finals = run.finals.clone();
            finals.sort_by_key(|f| (f.key, f.window));
            for f in &finals {
                let want = oracle
                    .iter()
                    .find(|o| o.key == f.key && o.window == f.window)
                    .map(|o| o.value);
                println!(
                    "  key {:>3} window {:>3}: {} (oracle {}) {}",
                    f.key,
                    f.window,
                    f.value,
                    want.map_or("?".to_string(), |v| v.to_string()),
                    if want == Some(f.value) {
                        "ok"
                    } else {
                        "MISMATCH"
                    },
                );
            }
            println!(
                "refinement: first-partial p50 {:.1}ms p99 {:.1}ms, t95-coverage {}, \
                 {} partials ({} pushed), min per key {}",
                run.stats.first_partial_p50_ms,
                run.stats.first_partial_p99_ms,
                run.stats
                    .t95_coverage_ms
                    .map_or("n/a".to_string(), |t| format!("{t:.1}ms")),
                run.stats.partials_total,
                run.stats.pushes_rx,
                run.min_partials_per_key(),
            );
        }
        let ok = run.matches_oracle(&facts) && run.coverage_monotone() && run.refine_seq_monotone();
        if !ok {
            return Err("query verdicts failed (oracle match / monotonicity)".into());
        }
        Ok(())
    })();
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn cmd_bench(args: &[String]) -> i32 {
    let result = (|| -> Result<(), String> {
        let quick = args.iter().any(|a| a == "--quick");
        // Defaults are the recorded-baseline configuration; --quick is a
        // miniature with the same phases and schema for CI smoke runs.
        let (tree_default, workload_default) = if quick {
            ("kary:10:2", "uniform:0.5:120")
        } else {
            ("kary:31:2", "uniform:0.5:600")
        };
        let tree_spec = flag(args, "--tree").unwrap_or(tree_default);
        let workload_spec = flag(args, "--workload").unwrap_or(workload_default);
        let policy_spec = flag(args, "--policy").unwrap_or("rww");
        let tree = parse_tree(tree_spec)?;
        let policy = parse_policy(policy_spec)?;
        let seed: u64 = flag(args, "--seed")
            .unwrap_or("42")
            .parse()
            .map_err(|_| "bad --seed")?;
        let depth: usize = flag(args, "--depth")
            .unwrap_or("8")
            .parse()
            .map_err(|_| "bad --depth")?;
        let batch: usize = flag(args, "--batch")
            .unwrap_or("32")
            .parse()
            .map_err(|_| "bad --batch")?;
        let transport = match flag(args, "--transport") {
            None => oat::net::TransportKind::Tcp,
            Some(s) => oat::net::TransportKind::parse(s)
                .ok_or_else(|| format!("bad --transport `{s}` (want tcp | uds | ring)"))?,
        };
        let threads: Option<usize> = match flag(args, "--threads") {
            Some(s) => Some(s.parse().map_err(|_| "bad --threads")?),
            None => None,
        };
        let sweep_depths: Vec<usize> = match flag(args, "--sweep-depth") {
            Some(s) => s
                .split(',')
                .map(|d| {
                    d.trim()
                        .parse()
                        .map_err(|_| format!("bad --sweep-depth `{d}`"))
                })
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        let seq = parse_workload(workload_spec, &tree, seed)?;
        // `--trace` turns on event recording for the pipelined phase; the
        // optional PATH (not starting with `--`) also writes the raw
        // oat-trace-v1 JSONL next to the bench JSON.
        let (trace, trace_path) = match args.iter().position(|a| a == "--trace") {
            Some(i) => (
                true,
                args.get(i + 1)
                    .filter(|p| !p.starts_with("--"))
                    .map(String::to_string),
            ),
            None => (false, None),
        };
        let wal_fsync_every: Option<u64> = match flag(args, "--durability") {
            None | Some("memory") => None,
            Some("wal") => Some(
                flag(args, "--fsync-every")
                    .unwrap_or("8")
                    .parse()
                    .map_err(|_| "bad --fsync-every")?,
            ),
            Some(s) => return Err(format!("bad --durability `{s}` (want memory | wal)")),
        };
        let config = oat::bench::BenchConfig {
            tree_spec: tree_spec.to_string(),
            policy_spec: policy_spec.to_string(),
            workload_spec: workload_spec.to_string(),
            seed,
            depth,
            batch,
            transport,
            threads,
            sweep_depths,
            quick,
            trace,
            mlap: args.iter().any(|a| a == "--mlap"),
            query: args.iter().any(|a| a == "--query"),
            wal_fsync_every,
        };
        let report =
            with_policy!(&policy, spec => oat::bench::run_bench(config, &tree, &spec, &seq))?;
        print!("{}", report.render_text());
        if let Some(tr) = &report.trace {
            // Per-edge wire transit of the traced (pipelined) phase:
            // which links carried the load and how long frames sat
            // between enqueue-at-sender and decode-at-receiver.
            let edges = oat_obs::wire_latency_by_edge(&tr.events);
            const SHOW: usize = 24;
            println!("  per-edge wire latency (traced phase, tx→rx):");
            for ((from, to), w) in edges.iter().take(SHOW) {
                println!(
                    "    {from:>3} -> {to:<3} {:>6} tx  {:>6} matched  p50 {:>8.1}us  p99 {:>9.1}us",
                    w.tx,
                    w.matched,
                    w.hist.quantile_us(0.5),
                    w.hist.quantile_us(0.99),
                );
            }
            if edges.len() > SHOW {
                println!("    ... and {} more edges", edges.len() - SHOW);
            }
        }
        let json = report.to_json();
        if args.iter().any(|a| a == "--json") {
            println!("{json}");
        }
        let path = flag(args, "--out")
            .map(str::to_string)
            .unwrap_or_else(|| report.default_filename());
        std::fs::write(&path, format!("{json}\n")).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
        if let (Some(tp), Some(trace)) = (trace_path, &report.trace) {
            std::fs::write(&tp, oat_obs::to_jsonl(trace))
                .map_err(|e| format!("write {tp}: {e}"))?;
            println!("wrote {tp} ({} events)", trace.events.len());
        }
        if !report.parity_ok {
            return Err("parity FAILED: TCP sequential run diverged from the simulator".into());
        }
        Ok(())
    })();
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_specs_parse() {
        assert_eq!(parse_tree("pair").unwrap().len(), 2);
        assert_eq!(parse_tree("path:5").unwrap().len(), 5);
        assert_eq!(parse_tree("kary:7:2").unwrap().len(), 7);
        assert_eq!(parse_tree("caterpillar:3:2").unwrap().len(), 9);
        assert!(parse_tree("blob:3").is_err());
        assert!(parse_tree("path:x").is_err());
    }

    #[test]
    fn workload_specs_parse() {
        let tree = parse_tree("star:10").unwrap();
        assert_eq!(
            parse_workload("uniform:0.5:100", &tree, 1).unwrap().len(),
            100
        );
        assert_eq!(
            parse_workload("zipf:0.3:50:1.0", &tree, 1).unwrap().len(),
            50
        );
        assert!(parse_workload("uniform:0.5", &tree, 1).is_err());
    }

    #[test]
    fn script_parses() {
        let s = parse_script("c@0, w@3=10 ,c@1").unwrap();
        assert_eq!(s.len(), 3);
        assert!(s[0].op.is_combine());
        assert_eq!(s[1].node, NodeId(3));
        assert!(parse_script("x@1").is_err());
        assert!(parse_script("w@1").is_err());
    }

    #[test]
    fn policy_specs_parse() {
        assert!(matches!(parse_policy("rww").unwrap(), PolicyChoice::Rww));
        assert!(matches!(
            parse_policy("ab:2:3").unwrap(),
            PolicyChoice::Ab(2, 3)
        ));
        assert!(matches!(
            parse_policy("randombreak:3:9").unwrap(),
            PolicyChoice::RandomBreak(3, 9)
        ));
        assert!(parse_policy("ab:2").is_err());
    }

    #[test]
    fn flag_extraction() {
        let args: Vec<String> = ["--tree", "pair", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag(&args, "--tree"), Some("pair"));
        assert_eq!(flag(&args, "--seed"), Some("9"));
        assert_eq!(flag(&args, "--nope"), None);
    }
}
