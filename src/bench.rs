//! The `oat bench` measured-performance harness.
//!
//! Runs one seeded workload through four executions and reports
//! throughput and latency for each, in a stable JSON schema
//! (`oat-bench-v4`) that is written to `BENCH_<date>.json` — the
//! trajectory every future performance PR diffs against:
//!
//! 1. **sim** — the deterministic simulator, sequential semantics
//!    (per-request wall latency plus the network model's hop latency);
//! 2. **net_sequential** — the cluster, one request at a time with
//!    quiescence between requests (the paper's sequential execution);
//! 3. **net_pipelined** — the cluster with the concurrent
//!    multi-client driver: one client per active node, each keeping
//!    `depth` requests in flight;
//! 4. **batch** — the cluster with the batch-frame driver: one client
//!    per active node, each shipping its requests `batch` at a time in
//!    single `REQ_BATCH` frames.
//!
//! All cluster phases run over the transport selected by
//! [`BenchConfig::transport`] (`oat bench --transport tcp|uds|ring`).
//!
//! The sim phase doubles as the parity oracle: the report carries
//! `parity_ok`, which compares the net-sequential run's combine values
//! and per-directed-edge/per-kind message counts against the simulator
//! bit for bit. A schema or parity regression fails `ci.sh`'s bench
//! smoke.
//!
//! Latency quantiles come from [`oat_obs::LogHistogram`] (≤ 1/64
//! relative error, mergeable across client threads) instead of sorting
//! a per-request `Vec`. With `trace` set in [`BenchConfig`], the
//! pipelined phase runs under the oat-obs sink and the report carries a
//! per-request [`oat_obs::PhaseBreakdown`] (poll/queue/dispatch/wire).

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use oat_core::agg::SumI64;
use oat_core::fault::FaultPlan;
use oat_core::mechanism::CombineOutcome;
use oat_core::policy::PolicySpec;
use oat_core::request::{ReqOp, Request};
use oat_core::tree::Tree;
use oat_net::{Cluster, DurabilityMode, NetConfig, TransportKind, WalConfig};
use oat_obs::{LogHistogram, PhaseBreakdown, Trace};
use oat_sim::{Engine, Schedule};

/// Schema tag emitted in every report; bump on incompatible change.
/// v2 over v1: every phase gains `lat_p999_us`, and the document gains a
/// top-level `phase_breakdown` (an object when the bench ran with
/// tracing, else `null`). All v1 fields are preserved unchanged.
/// Additively within v2: a nullable top-level `mlap` object (the
/// `--mlap` competitive phase) — absent runs emit `null`, so v2 readers
/// keep working.
/// v3 over v2: the config block gains `transport` (the connection
/// substrate the cluster phases ran on: `tcp`/`uds`/`ring`) and the
/// document gains a top-level `batch` phase block (the batch-frame
/// driver). All v2 fields are preserved unchanged.
/// v4 over v3: a nullable top-level `query` object (the `--query`
/// progressive online-aggregation phase: oracle exactness plus
/// refinement-latency percentiles) — absent runs emit `null`, so v3
/// readers keep working on everything else.
pub const SCHEMA: &str = "oat-bench-v4";

/// What to run and how hard; spec strings are echoed into the report.
pub struct BenchConfig {
    /// Tree spec string (already parsed by the caller).
    pub tree_spec: String,
    /// Policy spec string.
    pub policy_spec: String,
    /// Workload spec string.
    pub workload_spec: String,
    /// Workload seed.
    pub seed: u64,
    /// Pipeline depth for the concurrent driver (≥ 1).
    pub depth: usize,
    /// Requests per `REQ_BATCH` frame in the batched driver (≥ 1).
    pub batch: usize,
    /// Connection transport for every cluster phase.
    pub transport: TransportKind,
    /// Reactor pool size for the TCP phases; `None` = transport default
    /// (`min(cores, 4)`).
    pub threads: Option<usize>,
    /// Extra pipeline depths to sweep with the concurrent driver after
    /// the main phases (empty = no sweep).
    pub sweep_depths: Vec<usize>,
    /// Quick mode (CI smoke): tiny workload, same phases and schema.
    pub quick: bool,
    /// Record an oat-obs trace of the pipelined phase and attach the
    /// request phase breakdown to the report.
    pub trace: bool,
    /// Run the MLAP competitive phase (`oat bench --mlap`): every flush
    /// policy on the adversarial deadline spider, scored against the
    /// exact offline optimum.
    pub mlap: bool,
    /// Run the progressive-query phase (`oat bench --query`): a
    /// tumbling group-by over a seeded zipf fact stream, checked
    /// against the sequential oracle and timed for refinement latency.
    pub query: bool,
    /// Durability backend for the TCP phases: `None` runs in memory
    /// (the recorded-baseline default), `Some(n)` puts every node on a
    /// write-ahead log in a fresh temp directory with group commit
    /// every `n` records — the cost of durability is the delta between
    /// the two runs (EXPERIMENTS.md E19).
    pub wal_fsync_every: Option<u64>,
}

impl BenchConfig {
    /// The durability spec echoed into the report (`memory` / `wal:N`).
    fn durability_label(&self) -> String {
        match self.wal_fsync_every {
            None => "memory".to_string(),
            Some(n) => format!("wal:{n}"),
        }
    }
}

/// Throughput/latency numbers for one execution phase.
pub struct PhaseStats {
    /// Requests executed.
    pub requests: usize,
    /// Combines among them.
    pub combines: usize,
    /// Mechanism messages sent.
    pub messages: u64,
    /// Wall time of the phase.
    pub elapsed: Duration,
    /// Per-request wall latencies (nanosecond samples).
    lat: LogHistogram,
}

impl PhaseStats {
    fn new(
        requests: usize,
        combines: usize,
        messages: u64,
        elapsed: Duration,
        latencies: &[Duration],
    ) -> Self {
        let mut lat = LogHistogram::new();
        for d in latencies {
            lat.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        PhaseStats {
            requests,
            combines,
            messages,
            elapsed,
            lat,
        }
    }

    /// Requests per second over the phase wall time.
    pub fn req_per_s(&self) -> f64 {
        rate(self.requests as f64, self.elapsed)
    }

    /// Mechanism messages per second over the phase wall time.
    pub fn msg_per_s(&self) -> f64 {
        rate(self.messages as f64, self.elapsed)
    }

    /// p50 per-request wall latency in microseconds.
    pub fn lat_p50_us(&self) -> f64 {
        self.lat.quantile_us(0.50)
    }

    /// p99 per-request wall latency in microseconds.
    pub fn lat_p99_us(&self) -> f64 {
        self.lat.quantile_us(0.99)
    }

    /// p99.9 per-request wall latency in microseconds.
    pub fn lat_p999_us(&self) -> f64 {
        self.lat.quantile_us(0.999)
    }

    fn json_fields(&self) -> String {
        format!(
            "\"requests\": {}, \"combines\": {}, \"messages\": {}, \
             \"elapsed_s\": {:.6}, \"req_per_s\": {:.1}, \"msg_per_s\": {:.1}, \
             \"lat_p50_us\": {:.1}, \"lat_p99_us\": {:.1}, \"lat_p999_us\": {:.1}",
            self.requests,
            self.combines,
            self.messages,
            self.elapsed.as_secs_f64(),
            self.req_per_s(),
            self.msg_per_s(),
            self.lat_p50_us(),
            self.lat_p99_us(),
            self.lat_p999_us(),
        )
    }
}

/// The full baseline record: one phase block per execution mode plus
/// the parity verdict.
pub struct BenchReport {
    /// Echoed configuration.
    pub config: BenchConfig,
    /// UTC date the report was taken (`YYYY-MM-DD`).
    pub date: String,
    /// Simulator phase.
    pub sim: PhaseStats,
    /// Hop-latency p50 across sim requests (network-model hops).
    pub sim_hop_p50: f64,
    /// Hop-latency p99 across sim requests.
    pub sim_hop_p99: f64,
    /// TCP sequential phase.
    pub net_sequential: PhaseStats,
    /// Max inbox high-water mark over all nodes, sequential phase.
    pub net_sequential_queue_peak: u64,
    /// TCP pipelined phase.
    pub net_pipelined: PhaseStats,
    /// Max inbox high-water mark over all nodes, pipelined phase — the
    /// allocation-sensitive counter: deeper inboxes mean bigger batches
    /// (good for syscalls) but more queued envelopes (memory).
    pub net_pipelined_queue_peak: u64,
    /// Batch-frame driver phase (`batch` requests per `REQ_BATCH`).
    pub batch: PhaseStats,
    /// Clients the pipelined driver ran (one per active node).
    pub pipelined_clients: usize,
    /// OS threads the TCP clusters ran (the reactor pool size — grows
    /// with the configured pool, not the node count).
    pub threads_spawned: usize,
    /// One pipelined rerun per requested sweep depth.
    pub depth_sweep: Vec<DepthPoint>,
    /// Net-sequential combine values and per-edge/per-kind counts match
    /// the simulator exactly.
    pub parity_ok: bool,
    /// MLAP competitive phase (set when the bench ran with `mlap`).
    pub mlap: Option<MlapSummary>,
    /// Progressive-query phase (set when the bench ran with `query`).
    pub query: Option<QuerySummary>,
    /// Request phase breakdown of the pipelined phase (set when the
    /// bench ran with `trace`).
    pub phase_breakdown: Option<PhaseBreakdown>,
    /// The raw drained trace of the pipelined phase, for the CLI to
    /// export (set when the bench ran with `trace`).
    pub trace: Option<Trace>,
}

/// Competitive summary of the optional MLAP phase: every flush policy
/// on one adversarial deadline instance, scored against the exact
/// offline optimum from `oat-offline::mlap_opt`.
pub struct MlapSummary {
    /// Workload spec the phase ran (`adv:DEPTH:LEGS`).
    pub workload: String,
    /// Tree depth in edges.
    pub depth: u32,
    /// Exact offline optimum cost.
    pub opt: u64,
    /// Per-policy `(name, total cost, ratio vs OPT)`.
    pub policies: Vec<(String, u64, f64)>,
    /// The lazy deadline policy met zero misses and its certified
    /// `(depth+1)·OPT` service bound.
    pub within_bound: bool,
}

impl MlapSummary {
    fn to_json(&self) -> String {
        let mut pols = String::from("[");
        for (i, (name, cost, ratio)) in self.policies.iter().enumerate() {
            if i > 0 {
                pols.push_str(", ");
            }
            pols.push_str(&format!(
                "{{\"name\": \"{name}\", \"total_cost\": {cost}, \"ratio\": {ratio:.3}}}"
            ));
        }
        pols.push(']');
        format!(
            "{{\"workload\": \"{}\", \"depth\": {}, \"opt\": {}, \"bound\": {}, \
             \"within_bound\": {}, \"policies\": {}}}",
            self.workload,
            self.depth,
            self.opt,
            self.depth + 1,
            self.within_bound,
            pols,
        )
    }
}

/// Summary of the optional progressive-query phase: one declarative
/// continuous query (`sum group by key window tumbling(100ms)`) run by
/// `oat-query` over a seeded zipf fact stream, with its finals checked
/// against the sequential oracle and its refinement latency profiled.
pub struct QuerySummary {
    /// The declarative spec the phase ran.
    pub spec: String,
    /// Facts streamed.
    pub facts: usize,
    /// Distinct group-by keys in the stream.
    pub keys: u32,
    /// Every `(key, window)` final equals the sequential oracle.
    pub oracle_match: bool,
    /// Coverage never regressed across the partial sequence.
    pub coverage_monotone: bool,
    /// Partials emitted in total (including finals).
    pub partials_total: u64,
    /// `TAG_PARTIAL` push frames received from the cluster.
    pub pushes_rx: u64,
    /// p50 across keys of the time to each key's first partial (ms).
    pub first_partial_p50_ms: f64,
    /// p99 across keys of the time to each key's first partial (ms).
    pub first_partial_p99_ms: f64,
    /// Wall-clock ms until coverage first reached 0.95.
    pub t95_coverage_ms: Option<f64>,
}

impl QuerySummary {
    fn to_json(&self) -> String {
        let t95 = match self.t95_coverage_ms {
            Some(v) => format!("{v:.1}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"spec\": \"{}\", \"facts\": {}, \"keys\": {}, \"oracle_match\": {}, \
             \"coverage_monotone\": {}, \"partials_total\": {}, \"pushes_rx\": {}, \
             \"first_partial_p50_ms\": {:.1}, \"first_partial_p99_ms\": {:.1}, \
             \"t95_coverage_ms\": {}}}",
            self.spec,
            self.facts,
            self.keys,
            self.oracle_match,
            self.coverage_monotone,
            self.partials_total,
            self.pushes_rx,
            self.first_partial_p50_ms,
            self.first_partial_p99_ms,
            t95,
        )
    }
}

/// One point of the pipeline-depth sweep.
pub struct DepthPoint {
    /// Pipeline depth of this rerun.
    pub depth: usize,
    /// Requests per second at this depth.
    pub req_per_s: f64,
    /// p50 per-request wall latency, microseconds.
    pub lat_p50_us: f64,
    /// p99 per-request wall latency, microseconds.
    pub lat_p99_us: f64,
}

impl BenchReport {
    /// Pipelined speedup over the sequential TCP replay.
    pub fn speedup(&self) -> f64 {
        let seq = self.net_sequential.req_per_s();
        if seq > 0.0 {
            self.net_pipelined.req_per_s() / seq
        } else {
            0.0
        }
    }

    /// Batched-driver speedup over the sequential replay.
    pub fn batch_speedup(&self) -> f64 {
        let seq = self.net_sequential.req_per_s();
        if seq > 0.0 {
            self.batch.req_per_s() / seq
        } else {
            0.0
        }
    }

    /// Renders the stable `oat-bench-v4` JSON document.
    pub fn to_json(&self) -> String {
        let mut sweep = String::from("[");
        for (i, p) in self.depth_sweep.iter().enumerate() {
            if i > 0 {
                sweep.push_str(", ");
            }
            sweep.push_str(&format!(
                "{{\"depth\": {}, \"req_per_s\": {:.1}, \"lat_p50_us\": {:.1}, \"lat_p99_us\": {:.1}}}",
                p.depth, p.req_per_s, p.lat_p50_us, p.lat_p99_us,
            ));
        }
        sweep.push(']');
        let breakdown = match &self.phase_breakdown {
            Some(b) => b.to_json(),
            None => "null".to_string(),
        };
        let mlap = match &self.mlap {
            Some(m) => m.to_json(),
            None => "null".to_string(),
        };
        let query = match &self.query {
            Some(q) => q.to_json(),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"date\": \"{}\",\n  \"config\": {{\"tree\": \"{}\", \"policy\": \"{}\", \"workload\": \"{}\", \"seed\": {}, \"pipeline_depth\": {}, \"quick\": {}, \"durability\": \"{}\", \"transport\": \"{}\"}},\n  \"threads_spawned\": {},\n  \"sim\": {{{}, \"hop_p50\": {:.1}, \"hop_p99\": {:.1}}},\n  \"net_sequential\": {{{}, \"queue_peak_max\": {}}},\n  \"net_pipelined\": {{{}, \"queue_peak_max\": {}, \"depth\": {}, \"clients\": {}, \"speedup_vs_sequential\": {:.2}}},\n  \"batch\": {{{}, \"batch_size\": {}, \"speedup_vs_sequential\": {:.2}}},\n  \"depth_sweep\": {},\n  \"mlap\": {mlap},\n  \"query\": {query},\n  \"phase_breakdown\": {breakdown},\n  \"parity_ok\": {}\n}}",
            self.date,
            self.config.tree_spec,
            self.config.policy_spec,
            self.config.workload_spec,
            self.config.seed,
            self.config.depth,
            self.config.quick,
            self.config.durability_label(),
            self.config.transport.name(),
            self.threads_spawned,
            self.sim.json_fields(),
            self.sim_hop_p50,
            self.sim_hop_p99,
            self.net_sequential.json_fields(),
            self.net_sequential_queue_peak,
            self.net_pipelined.json_fields(),
            self.net_pipelined_queue_peak,
            self.config.depth,
            self.pipelined_clients,
            self.speedup(),
            self.batch.json_fields(),
            self.config.batch,
            self.batch_speedup(),
            sweep,
            self.parity_ok,
        )
    }

    /// The default output filename: `BENCH_<date>.json`.
    pub fn default_filename(&self) -> String {
        format!("BENCH_{}.json", self.date)
    }

    /// Human-readable summary table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench: tree {}, policy {}, workload {} (seed {}), depth {}, durability {}, transport {}\n",
            self.config.tree_spec,
            self.config.policy_spec,
            self.config.workload_spec,
            self.config.seed,
            self.config.depth,
            self.config.durability_label(),
            self.config.transport.name(),
        ));
        for (name, p) in [
            ("sim", &self.sim),
            ("net sequential", &self.net_sequential),
            ("net pipelined", &self.net_pipelined),
            ("net batched", &self.batch),
        ] {
            out.push_str(&format!(
                "  {name:<15} {:>8.0} req/s  {:>10.0} msg/s  p50 {:>8.1}us  p99 {:>9.1}us  ({} reqs, {} msgs, {:.3}s)\n",
                p.req_per_s(),
                p.msg_per_s(),
                p.lat_p50_us(),
                p.lat_p99_us(),
                p.requests,
                p.messages,
                p.elapsed.as_secs_f64(),
            ));
        }
        out.push_str(&format!(
            "  pipelined speedup vs sequential: {:.2}x ({} clients, depth {}, {} reactor threads); parity: {}\n",
            self.speedup(),
            self.pipelined_clients,
            self.config.depth,
            self.threads_spawned,
            if self.parity_ok { "OK" } else { "FAILED" },
        ));
        out.push_str(&format!(
            "  batched speedup vs sequential: {:.2}x (batch size {})\n",
            self.batch_speedup(),
            self.config.batch,
        ));
        for p in &self.depth_sweep {
            out.push_str(&format!(
                "  sweep depth {:<3} {:>8.0} req/s  p50 {:>8.1}us  p99 {:>9.1}us\n",
                p.depth, p.req_per_s, p.lat_p50_us, p.lat_p99_us,
            ));
        }
        if let Some(m) = &self.mlap {
            let mut pols = String::new();
            for (name, cost, ratio) in &m.policies {
                pols.push_str(&format!("{name} {cost} ({ratio:.2}x)  "));
            }
            out.push_str(&format!(
                "  mlap {}: OPT {}; {}bound (depth+1)={}: {}\n",
                m.workload,
                m.opt,
                pols,
                m.depth + 1,
                if m.within_bound { "OK" } else { "VIOLATED" },
            ));
        }
        if let Some(q) = &self.query {
            let t95 = match q.t95_coverage_ms {
                Some(v) => format!("{v:.1}ms"),
                None => "n/a".to_string(),
            };
            out.push_str(&format!(
                "  query '{}': {} facts/{} keys, {} partials ({} pushed), first-partial p50 {:.1}ms p99 {:.1}ms, t95-coverage {}, oracle: {}\n",
                q.spec,
                q.facts,
                q.keys,
                q.partials_total,
                q.pushes_rx,
                q.first_partial_p50_ms,
                q.first_partial_p99_ms,
                t95,
                if q.oracle_match && q.coverage_monotone {
                    "OK"
                } else {
                    "FAILED"
                },
            ));
        }
        out
    }
}

/// Runs the three-phase benchmark. The caller parses the specs (so the
/// CLI owns the string formats) and passes both the parsed values and
/// the spec strings for the report.
pub fn run_bench<S: PolicySpec>(
    config: BenchConfig,
    tree: &Tree,
    spec: &S,
    seq: &[Request<i64>],
) -> Result<BenchReport, String>
where
    S::Node: 'static,
{
    // ---- Phase 1: simulator (also the parity oracle). --------------
    let mut engine = Engine::new(tree.clone(), SumI64, spec, Schedule::Fifo, false);
    let mut sim_latencies = Vec::with_capacity(seq.len());
    let mut sim_hops: Vec<f64> = Vec::with_capacity(seq.len());
    let mut sim_combines: Vec<(usize, i64)> = Vec::new();
    let sim_start = Instant::now();
    for (i, q) in seq.iter().enumerate() {
        let t0 = Instant::now();
        engine.reset_depth_window();
        match &q.op {
            ReqOp::Write(arg) => {
                engine.initiate_write(q.node, *arg);
                engine.run_to_quiescence();
            }
            ReqOp::Combine => match engine.initiate_combine(q.node) {
                CombineOutcome::Done(v) => sim_combines.push((i, v)),
                CombineOutcome::Pending => {
                    let done = engine.run_to_quiescence();
                    let (_, v) = done
                        .into_iter()
                        .find(|(n, _)| *n == q.node)
                        .ok_or("combine did not complete in its sequential execution")?;
                    sim_combines.push((i, v));
                }
                CombineOutcome::Coalesced => {
                    return Err("coalesced combine in a sequential run".into())
                }
            },
        }
        sim_latencies.push(t0.elapsed());
        sim_hops.push(engine.window_max_depth() as f64);
    }
    let sim_elapsed = sim_start.elapsed();
    sim_hops.sort_by(|a, b| a.total_cmp(b));
    let sim = PhaseStats::new(
        seq.len(),
        sim_combines.len(),
        engine.stats().total(),
        sim_elapsed,
        &sim_latencies,
    );
    let sim_hop_p50 = percentile(&sim_hops, 0.50);
    let sim_hop_p99 = percentile(&sim_hops, 0.99);

    // ---- Phase 2: TCP, sequential replay (parity-checked). ---------
    // Each phase spawns its own cluster; with a WAL backend the log
    // directory is wiped before every spawn so no phase cold-starts
    // from the previous phase's durable state (which would break both
    // parity and the measurement).
    let wal_dir = config
        .wal_fsync_every
        .map(|_| std::env::temp_dir().join(format!("oat-bench-wal-{}", std::process::id())));
    let net_cfg = NetConfig {
        threads: config.threads,
        transport: config.transport,
        durability: match (config.wal_fsync_every, &wal_dir) {
            (Some(n), Some(dir)) => {
                let mut wal = WalConfig::new(dir);
                wal.fsync_every = n;
                DurabilityMode::Wal(wal)
            }
            _ => DurabilityMode::Memory,
        },
        ..NetConfig::default()
    };
    let spawn = || {
        if let Some(dir) = &wal_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
        Cluster::spawn_with(
            tree,
            SumI64,
            spec,
            false,
            FaultPlan::default(),
            net_cfg.clone(),
        )
        .map_err(|e| format!("cluster spawn: {e}"))
    };
    let cluster = spawn()?;
    let seq_start = Instant::now();
    let net = cluster
        .replay_sequential(seq)
        .map_err(|e| format!("sequential replay: {e}"))?;
    let seq_elapsed = seq_start.elapsed();
    let net_stats = cluster.stats().map_err(|e| e.to_string())?;
    let parity_ok = net.combines == sim_combines
        && net_stats.per_edge_counts() == engine.stats().per_edge_counts();
    let net_sequential_queue_peak = max_queue_peak(&cluster)?;
    let net_sequential = PhaseStats::new(
        seq.len(),
        net.combines.len(),
        net.total_msgs(),
        seq_elapsed,
        &net.latencies,
    );
    cluster.shutdown();

    // ---- Phase 3: TCP, pipelined multi-client replay. --------------
    let cluster = spawn()?;
    let threads_spawned = cluster.threads_spawned();
    let pipelined_clients = {
        let mut active = vec![false; tree.len()];
        for q in seq {
            active[q.node.idx()] = true;
        }
        active.iter().filter(|a| **a).count()
    };
    if config.trace {
        // Size the rings to the workload instead of the 32 MiB default:
        // 64 event slots per request per thread is far above any
        // observed per-thread rate (the reactor shard carrying all
        // node-side events peaks around 30/request even in pathological
        // lease-thrash runs), and a right-sized ring keeps the traced
        // phase's allocation cost out of the measurement.
        let capacity = (seq.len().saturating_mul(64))
            .next_power_of_two()
            .clamp(1 << 14, oat_obs::DEFAULT_RING_CAPACITY);
        oat_obs::install(capacity);
    }
    let pipe = cluster
        .replay_pipelined(seq, config.depth)
        .map_err(|e| format!("pipelined replay: {e}"))?;
    // Writes may still have updates in flight when their ack returns.
    cluster.quiesce();
    let (phase_breakdown, trace) = if config.trace {
        // Quiescent: every client thread has joined and the reactors
        // are idle, so the drain sees complete, untorn rings.
        oat_obs::disable();
        let trace = oat_obs::drain();
        (Some(oat_obs::phase_breakdown(&trace.events)), Some(trace))
    } else {
        (None, None)
    };
    let pipe_msgs = cluster.total_messages();
    let net_pipelined_queue_peak = max_queue_peak(&cluster)?;
    let net_pipelined = PhaseStats::new(
        seq.len(),
        pipe.combines.len(),
        pipe_msgs,
        pipe.elapsed,
        &pipe.latencies,
    );
    cluster.shutdown();

    // ---- Phase 4: batched replay (one REQ_BATCH per `batch` reqs). -
    let cluster = spawn()?;
    let batched = cluster
        .replay_batched(seq, config.batch)
        .map_err(|e| format!("batched replay: {e}"))?;
    cluster.quiesce();
    let batch_msgs = cluster.total_messages();
    let batch = PhaseStats::new(
        seq.len(),
        batched.combines.len(),
        batch_msgs,
        batched.elapsed,
        &batched.latencies,
    );
    cluster.shutdown();

    // ---- Optional phase 4: pipeline-depth sweep. -------------------
    let mut depth_sweep = Vec::with_capacity(config.sweep_depths.len());
    for &d in &config.sweep_depths {
        let cluster = spawn()?;
        let pipe = cluster
            .replay_pipelined(seq, d)
            .map_err(|e| format!("sweep depth {d}: {e}"))?;
        cluster.quiesce();
        cluster.shutdown();
        let stats = PhaseStats::new(
            seq.len(),
            pipe.combines.len(),
            0,
            pipe.elapsed,
            &pipe.latencies,
        );
        depth_sweep.push(DepthPoint {
            depth: d,
            req_per_s: stats.req_per_s(),
            lat_p50_us: stats.lat_p50_us(),
            lat_p99_us: stats.lat_p99_us(),
        });
    }

    // ---- Optional phase 5: MLAP competitive summary. ---------------
    let mlap = if config.mlap {
        Some(run_mlap_phase(config.quick)?)
    } else {
        None
    };

    // ---- Optional phase 6: progressive-query summary. --------------
    let query = if config.query {
        Some(run_query_phase(config.quick, config.transport)?)
    } else {
        None
    };

    if let Some(dir) = &wal_dir {
        let _ = std::fs::remove_dir_all(dir);
    }

    Ok(BenchReport {
        config,
        date: utc_date(),
        sim,
        sim_hop_p50,
        sim_hop_p99,
        net_sequential,
        net_sequential_queue_peak,
        net_pipelined,
        net_pipelined_queue_peak,
        batch,
        pipelined_clients,
        threads_spawned,
        depth_sweep,
        mlap,
        query,
        parity_ok,
        phase_breakdown,
        trace,
    })
}

/// The `--mlap` phase: every flush policy on the adversarial
/// staggered-deadline spider, scored against the exact offline optimum.
/// Pure computation (no cluster), so it rides along at negligible cost.
fn run_mlap_phase(quick: bool) -> Result<MlapSummary, String> {
    let (depth, legs) = if quick { (3, 6) } else { (4, 12) };
    let inst = oat_workloads::mlap::adversarial_deadline(depth, legs);
    let opt = oat_offline::mlap_opt::mlap_opt(&inst)
        .ok_or("mlap OPT oracle refused the bench instance (over the candidate-time cap)")?;
    let mut policies = Vec::new();
    let mut within_bound = false;
    for mut p in oat_mlap::all_policies() {
        let run = oat_mlap::run_mlap(&inst, p.as_mut(), Schedule::Fifo);
        let ratio = run.total_cost() as f64 / opt as f64;
        if run.policy == "odepth" {
            within_bound =
                run.deadline_misses == 0 && run.service_cost <= u64::from(inst.depth() + 1) * opt;
        }
        let total = run.total_cost();
        policies.push((run.policy, total, ratio));
    }
    Ok(MlapSummary {
        workload: format!("adv:{depth}:{legs}"),
        depth: inst.depth(),
        opt,
        policies,
        within_bound,
    })
}

/// The `--query` phase: the ISSUE acceptance query (`sum group by key
/// window tumbling(100ms)`) over a seeded zipf fact stream on a fresh
/// cluster, run through `oat-query` and checked against the sequential
/// oracle. Rides the bench's transport so refinement latency is
/// measured on the same substrate as the throughput phases.
fn run_query_phase(quick: bool, transport: TransportKind) -> Result<QuerySummary, String> {
    use oat_core::policy::rww::RwwSpec;
    let (facts_n, keys) = if quick { (120, 3) } else { (300, 4) };
    let spec: oat_query::QuerySpec = "sum group by key window tumbling(100ms)"
        .parse()
        .map_err(|e: String| format!("query phase spec: {e}"))?;
    let facts = oat_workloads::zipf_facts(facts_n, keys, 1.2, 4, 42);
    let tree = Tree::kary(7, 2);
    let cfg = NetConfig {
        transport,
        ..NetConfig::default()
    };
    let cluster = Cluster::spawn_with(&tree, SumI64, &RwwSpec, false, FaultPlan::default(), cfg)
        .map_err(|e| format!("query phase spawn: {e}"))?;
    let run = oat_query::run(&cluster, &spec, &facts).map_err(|e| format!("query phase: {e}"))?;
    cluster.shutdown();
    Ok(QuerySummary {
        spec: spec.to_string(),
        facts: facts.len(),
        keys,
        oracle_match: run.matches_oracle(&facts),
        coverage_monotone: run.coverage_monotone(),
        partials_total: run.stats.partials_total,
        pushes_rx: run.stats.pushes_rx,
        first_partial_p50_ms: run.stats.first_partial_p50_ms,
        first_partial_p99_ms: run.stats.first_partial_p99_ms,
        t95_coverage_ms: run.stats.t95_coverage_ms,
    })
}

fn max_queue_peak<A: oat_core::agg::AggOp>(cluster: &Cluster<A>) -> Result<u64, String>
where
    A::Value: oat_core::wire::WireValue,
{
    let mut peak = 0;
    for u in cluster.tree().nodes() {
        peak = peak.max(
            cluster
                .node_metrics(u)
                .map_err(|e| e.to_string())?
                .queue_peak,
        );
    }
    Ok(peak)
}

fn rate(count: f64, elapsed: Duration) -> f64 {
    let s = elapsed.as_secs_f64();
    if s > 0.0 {
        count / s
    } else {
        0.0
    }
}

/// Nearest-rank percentile over an ascending-sorted slice; 0 when empty.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (no external
/// date crate in the offline environment — civil-from-days arithmetic).
fn utc_date() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch → proleptic Gregorian (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oat_core::policy::rww::RwwSpec;
    use oat_core::tree::NodeId;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn civil_date_conversion() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        // 2026-08-06 is 20_671 days after the epoch.
        assert_eq!(civil_from_days(20_671), (2026, 8, 6));
    }

    #[test]
    fn quick_bench_report_is_schema_complete_and_parity_clean() {
        let tree = Tree::path(4);
        let seq: Vec<Request<i64>> = (0..16u32)
            .map(|i| {
                let node = NodeId(i % 4);
                if i % 3 == 0 {
                    Request::combine(node)
                } else {
                    Request::write(node, i as i64)
                }
            })
            .collect();
        let report = run_bench(
            BenchConfig {
                tree_spec: "path:4".into(),
                policy_spec: "rww".into(),
                workload_spec: "script".into(),
                seed: 0,
                depth: 8,
                batch: 4,
                transport: TransportKind::Tcp,
                threads: Some(2),
                sweep_depths: vec![1, 4],
                quick: true,
                trace: true,
                mlap: true,
                query: true,
                wal_fsync_every: None,
            },
            &tree,
            &RwwSpec,
            &seq,
        )
        .unwrap();
        assert!(report.parity_ok);
        let json = report.to_json();
        for key in [
            "\"schema\": \"oat-bench-v4\"",
            "\"transport\": \"tcp\"",
            "\"sim\":",
            "\"net_sequential\":",
            "\"net_pipelined\":",
            "\"batch\": {",
            "\"batch_size\": 4",
            "\"req_per_s\"",
            "\"msg_per_s\"",
            "\"lat_p50_us\"",
            "\"lat_p99_us\"",
            "\"lat_p999_us\"",
            "\"queue_peak_max\"",
            "\"speedup_vs_sequential\"",
            "\"threads_spawned\": 2",
            "\"durability\": \"memory\"",
            "\"depth_sweep\": [{\"depth\": 1,",
            "\"mlap\": {\"workload\": \"adv:3:6\"",
            "\"within_bound\": true",
            "\"query\": {\"spec\": \"sum group by key window tumbling(100ms)\"",
            "\"oracle_match\": true",
            "\"coverage_monotone\": true",
            "\"first_partial_p50_ms\"",
            "\"phase_breakdown\": {\"requests\": 16,",
            "\"parity_ok\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let mlap = report.mlap.as_ref().unwrap();
        assert!(mlap.within_bound);
        assert_eq!(mlap.policies.len(), 4);
        assert!(mlap.policies.iter().all(|(_, cost, _)| *cost >= mlap.opt));
        let query = report.query.as_ref().unwrap();
        assert!(query.oracle_match, "query phase finals must equal oracle");
        assert!(query.coverage_monotone);
        assert!(query.partials_total > 0 && query.pushes_rx > 0);
        // Tracing was on for the pipelined phase: all 16 requests were
        // observed client-side and matched to node-side serve records.
        let b = report.phase_breakdown.as_ref().unwrap();
        assert_eq!(b.requests, 16);
        assert_eq!(b.matched, 16, "fault-free pipelined requests all match");
        assert!(report.trace.is_some());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(report.default_filename().starts_with("BENCH_"));
        // Pipelined, batched, and sequential replays executed the same
        // requests and resolved the same combines.
        assert_eq!(
            report.net_pipelined.requests,
            report.net_sequential.requests
        );
        assert_eq!(
            report.net_pipelined.combines,
            report.net_sequential.combines
        );
        assert_eq!(report.batch.requests, report.net_sequential.requests);
        assert_eq!(report.batch.combines, report.net_sequential.combines);
    }
}
