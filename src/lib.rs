//! # online-aggregation-trees
//!
//! A complete, from-scratch implementation of **“Online Aggregation over
//! Trees”** (C. G. Plaxton, M. Tiwari, P. Yalagandula; IPPS 2007):
//! lease-based aggregation over tree networks, the online algorithm
//! **RWW**, the offline optima it competes against, the Figure-5 linear
//! program behind the 5/2-competitiveness proof, and the strict/causal
//! consistency machinery of Sections 3 and 5.
//!
//! ## Quick start
//!
//! ```
//! use oat::prelude::*;
//!
//! // An 8-node balanced binary tree computing a SUM aggregate with the
//! // paper's RWW lease policy.
//! let tree = Tree::kary(8, 2);
//! let mut sys = AggregationSystem::new(tree, SumI64, RwwSpec);
//!
//! sys.write(NodeId(5), 10);
//! sys.write(NodeId(2), 32);
//! assert_eq!(sys.read(NodeId(0)), 42);   // pulls via probe/response
//! assert_eq!(sys.read(NodeId(0)), 42);   // answered locally via leases
//!
//! // Message accounting, per the paper's cost model:
//! println!("messages: {}", sys.messages_sent());
//! ```
//!
//! ## Crate map
//!
//! * [`core`] — tree topology, `⊕` operators, the Figure-1
//!   mechanism, policies (RWW, `(a,b)`, push-all, pull-all),
//! * [`sim`] — deterministic simulator (sequential + concurrent
//!   executors, invariant checks),
//! * [`offline`] — Figure-2 cost model, OPT dynamic program,
//!   NOPT epoch bound, Theorem-3 adversary,
//! * [`lp`] — Figure-4 state machine, Figure-5 LP, simplex,
//! * [`consistency`] — strict and causal checkers,
//! * [`multi`] — SDIMS-style multi-attribute layer,
//! * [`modelcheck`] — exhaustive interleaving exploration,
//! * [`workloads`] — topology and request generators,
//! * [`concurrent`] — one-thread-per-node runtime,
//! * [`net`] — TCP cluster runtime (`oat serve` / `oat bench-net`),
//! * [`bench`] — the `oat bench` throughput/latency baseline harness,
//! * [`mlap`] — the second problem family: Multi-Level Aggregation
//!   with deadline and linear-delay cost models (`oat mlap`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;

pub use oat_concurrent as concurrent;
pub use oat_consistency as consistency;
pub use oat_core as core;
pub use oat_lp as lp;
pub use oat_mlap as mlap;
pub use oat_modelcheck as modelcheck;
pub use oat_multi as multi;
pub use oat_net as net;
pub use oat_offline as offline;
pub use oat_query as query;
pub use oat_sim as sim;
pub use oat_wal as wal;
pub use oat_workloads as workloads;

use oat_core::agg::AggOp;
use oat_core::mechanism::CombineOutcome;
use oat_core::policy::PolicySpec;
use oat_core::tree::{NodeId, Tree};
use oat_sim::{Engine, Schedule};

/// Everything needed for typical use, one `use` away.
pub mod prelude {
    pub use crate::AggregationSystem;
    pub use oat_core::agg::{AggOp, AvgI64, BoolOr, MaxI64, MeanValue, MinI64, SumF64, SumI64};
    pub use oat_core::policy::ab::AbSpec;
    pub use oat_core::policy::baseline::{AlwaysLeaseSpec, NeverLeaseSpec};
    pub use oat_core::policy::rww::RwwSpec;
    pub use oat_core::request::Request;
    pub use oat_core::tree::{NodeId, Tree};
    pub use oat_multi::MultiSystem;
}

/// A ready-to-use aggregation system: the Figure-1 mechanism over a tree,
/// with synchronous (sequential-execution) `read`/`write` operations.
///
/// This facade drives the deterministic simulator with the paper's
/// sequential semantics: every operation runs to quiescence before
/// returning, so reads are strictly consistent (Lemma 3.12). For
/// concurrent semantics, use [`oat_sim::concurrent`] or
/// [`oat_concurrent`] directly.
pub struct AggregationSystem<S: PolicySpec, A: AggOp> {
    engine: Engine<S, A>,
}

impl<S: PolicySpec, A: AggOp> AggregationSystem<S, A> {
    /// Builds a system over `tree` with aggregation operator `op` and
    /// lease policy `spec`.
    pub fn new(tree: Tree, op: A, spec: S) -> Self {
        AggregationSystem {
            engine: Engine::new(tree, op, &spec, Schedule::Fifo, false),
        }
    }

    /// Like [`AggregationSystem::new`] but with the Section-5 ghost logs
    /// enabled, so [`AggregationSystem::read_with_provenance`] works
    /// (costs memory proportional to the write history).
    pub fn with_provenance(tree: Tree, op: A, spec: S) -> Self {
        AggregationSystem {
            engine: Engine::new(tree, op, &spec, Schedule::Fifo, true),
        }
    }

    /// Pre-establishes all leases (Astrolabe-style warm start): every
    /// read is local from the start and every write is pushed everywhere.
    pub fn prewarm(&mut self) {
        self.engine.prewarm_leases();
    }

    /// Writes `value` as the local value of `node` and propagates along
    /// the current lease graph.
    pub fn write(&mut self, node: NodeId, value: A::Value) {
        self.engine.initiate_write(node, value);
        let done = self.engine.run_to_quiescence();
        debug_assert!(done.is_empty());
    }

    /// Returns the global aggregate value at `node` (a `combine`
    /// request), possibly setting leases along the way.
    pub fn read(&mut self, node: NodeId) -> A::Value {
        match self.engine.initiate_combine(node) {
            CombineOutcome::Done(v) => v,
            CombineOutcome::Pending => {
                let done = self.engine.run_to_quiescence();
                done.into_iter()
                    .find(|(n, _)| *n == node)
                    .expect("combine completes within its sequential execution")
                    .1
            }
            CombineOutcome::Coalesced => {
                unreachable!("sequential facade never overlaps requests")
            }
        }
    }

    /// A combine *with provenance* — the paper's `gather` request
    /// (Section 5): returns the aggregate plus, per node, the index of
    /// the most recent write reflected in it (`-1` = none). Requires
    /// [`AggregationSystem::with_provenance`].
    pub fn read_with_provenance(&mut self, node: NodeId) -> (A::Value, Vec<i64>) {
        let v = self.read(node);
        let ghost = self
            .engine
            .node(node)
            .ghost()
            .expect("provenance requires AggregationSystem::with_provenance");
        (v, ghost.recent_writes(self.engine.tree().len()))
    }

    /// Total messages exchanged so far (the paper's cost measure).
    pub fn messages_sent(&self) -> u64 {
        self.engine.stats().total()
    }

    /// The underlying engine, for statistics and invariant inspection.
    pub fn engine(&self) -> &Engine<S, A> {
        &self.engine
    }

    /// The tree topology.
    pub fn tree(&self) -> &Tree {
        self.engine.tree()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_roundtrip() {
        let mut sys = AggregationSystem::new(Tree::star(5), SumI64, RwwSpec);
        sys.write(NodeId(1), 3);
        sys.write(NodeId(2), 4);
        assert_eq!(sys.read(NodeId(3)), 7);
        let before = sys.messages_sent();
        assert_eq!(sys.read(NodeId(3)), 7);
        assert_eq!(sys.messages_sent(), before, "second read is lease-local");
    }

    #[test]
    fn facade_gather_provenance() {
        let mut sys = AggregationSystem::with_provenance(Tree::path(3), SumI64, RwwSpec);
        sys.write(NodeId(2), 5);
        sys.write(NodeId(2), 6);
        let (v, prov) = sys.read_with_provenance(NodeId(0));
        assert_eq!(v, 6);
        // Node 2's second write (index 1) is the most recent reflected;
        // nodes 0 and 1 never wrote.
        assert_eq!(prov, vec![-1, -1, 1]);
    }

    #[test]
    fn facade_with_min_operator() {
        let mut sys = AggregationSystem::new(Tree::path(4), MinI64, RwwSpec);
        sys.write(NodeId(0), 9);
        sys.write(NodeId(3), -2);
        assert_eq!(sys.read(NodeId(1)), -2);
    }

    #[test]
    fn facade_prewarm_reads_are_free() {
        let mut sys = AggregationSystem::new(Tree::kary(6, 2), SumI64, AlwaysLeaseSpec);
        sys.prewarm();
        assert_eq!(sys.read(NodeId(5)), 0);
        assert_eq!(sys.messages_sent(), 0);
        sys.write(NodeId(0), 5);
        assert!(sys.messages_sent() > 0, "write pushed updates");
        let m = sys.messages_sent();
        assert_eq!(sys.read(NodeId(5)), 5);
        assert_eq!(sys.messages_sent(), m);
    }
}
